package offload

// SlowPathSignals is the host slow path's congestion snapshot, fed to
// the controller once per control tick by the device model (see
// Controller.SetSlowPathSignals). The zero value means "no slow-path
// pain" — controllers driven without a scheduled slow path see exactly
// the pre-signal behaviour.
type SlowPathSignals struct {
	// BacklogPkts is the total packets queued on the slow path;
	// MaxClassPkts the deepest single class's backlog; QueueCapPkts the
	// per-class queue bound (the denominator for backlog fractions).
	BacklogPkts, MaxClassPkts, QueueCapPkts int
	// ShedRate is the fraction of slow-path arrivals shed or dropped
	// since the previous tick, in [0, 1].
	ShedRate float64
	// HostUtil is the busy fraction of the slow-path host cores since
	// the previous tick (1.0 = every core fully busy).
	HostUtil float64
}

// PolicyInput is the controller state a threshold policy reads on each
// control tick.
type PolicyInput struct {
	// QueueDepth/QueueCap describe the rule-install queue: sustained
	// depth means candidates arrive faster than the insertion budget
	// drains them.
	QueueDepth, QueueCap int
	// TableUsed/TableCap describe the NIC rule-table occupancy.
	TableUsed, TableCap int
	// SketchErrBytes is the sketch's current expected overestimate —
	// a crowded sketch argues for a higher threshold, since marginal
	// candidates are likely collision noise.
	SketchErrBytes uint64
	// Slow is the slow path's congestion snapshot (zero without a
	// scheduled slow path): sustained shed rate or host saturation
	// argues for a *lower* threshold, promoting flows off the host.
	Slow SlowPathSignals
}

// Policy decides the offload threshold: a flow whose windowed byte
// estimate reaches the threshold becomes an install candidate. Adjust
// is called once per control tick with the previous threshold and the
// current operating state; implementations must be deterministic pure
// functions of their inputs.
type Policy interface {
	// Name identifies the policy in reports and metrics.
	Name() string
	// Adjust returns the next threshold in window bytes.
	Adjust(cur uint64, in PolicyInput) uint64
}

// StaticPolicy pins the threshold to a constant — the baseline the
// adaptive controller is measured against.
type StaticPolicy struct {
	// Bytes is the fixed offload threshold in window bytes.
	Bytes uint64
}

// NewStatic returns a fixed-threshold policy.
func NewStatic(bytes uint64) *StaticPolicy {
	if bytes < 1 {
		bytes = 1
	}
	return &StaticPolicy{Bytes: bytes}
}

// Name implements Policy.
func (p *StaticPolicy) Name() string { return "static" }

// Adjust implements Policy: the threshold never moves.
func (p *StaticPolicy) Adjust(uint64, PolicyInput) uint64 { return p.Bytes }

// AdaptiveConfig tunes the adaptive threshold controller. Zero fields
// take the defaults noted on each field.
type AdaptiveConfig struct {
	// Min/Max clamp the threshold (defaults 2048 / 1<<26 bytes).
	Min, Max uint64
	// Up/Down are the multiplicative step factors (defaults 1.5 / 0.8):
	// the threshold rises fast under pressure and relaxes slowly, the
	// usual AIMD-flavoured asymmetry.
	Up, Down float64
	// QueueHi/QueueLo are install-queue occupancy watermarks (defaults
	// 0.5 / 0.1): above QueueHi candidates outrun the insertion budget
	// and the threshold rises; the queue must fall under QueueLo before
	// the threshold relaxes.
	QueueHi, QueueLo float64
	// OccHi/OccLo are rule-table occupancy watermarks (defaults
	// 0.9 / 0.5), applied the same way.
	OccHi, OccLo float64
	// ShedHi is the slow-path shed-rate watermark (default 0.01): when
	// the slow path sheds more than this fraction of its arrivals the
	// threshold falls, promoting flows off the pained host. Set it >= 1
	// (a shed rate can never exceed 1) to ignore the signal — the
	// congestion-blind policy of earlier revisions.
	ShedHi float64
	// HostHi is the slow-path host-utilization watermark (default
	// 0.85 of the slow-path cores). Values > 1 disable it.
	HostHi float64
	// BacklogHi is the slow-path per-class backlog watermark as a
	// fraction of the per-class queue bound (default 0.5). Values > 1
	// disable it.
	BacklogHi float64
}

// MinBytes is the absolute floor under every configured Min rail: a
// threshold driven to 0 by multiplicative decrease would promote every
// flow on its first packet and flood the install queue, so Adjust never
// returns less than this even for a zero-valued AdaptivePolicy.
const MinBytes = 64

func (c AdaptiveConfig) defaults() AdaptiveConfig {
	if c.Min == 0 {
		c.Min = 2048
	}
	if c.Max == 0 {
		c.Max = 1 << 26
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Up <= 1 {
		c.Up = 1.5
	}
	if c.Down <= 0 || c.Down >= 1 {
		c.Down = 0.8
	}
	if c.QueueHi <= 0 {
		c.QueueHi = 0.5
	}
	if c.QueueLo <= 0 {
		c.QueueLo = 0.1
	}
	if c.OccHi <= 0 {
		c.OccHi = 0.9
	}
	if c.OccLo <= 0 {
		c.OccLo = 0.5
	}
	if c.ShedHi <= 0 {
		c.ShedHi = 0.01
	}
	if c.HostHi <= 0 {
		c.HostHi = 0.85
	}
	if c.BacklogHi <= 0 {
		c.BacklogHi = 0.5
	}
	return c
}

// AdaptivePolicy moves the threshold to keep the install queue, the
// rule-table occupancy, and the host slow path inside their operating
// ranges: multiplicative increase when the rule channel or table is
// pressured, multiplicative decrease when the slow path is in pain
// (shedding, deep per-class backlog, or saturated host cores — promote
// flows off the host), gentle decrease when everything is comfortably
// idle. Control-plane pressure outranks slow-path pain: with the table
// full or the install queue deep, lowering the threshold could not
// promote anything anyway and would only flood the queue further.
// Between the watermarks the threshold holds — hysteresis that keeps a
// marginal elephant from flapping across the install/demote boundary
// every window.
type AdaptivePolicy struct {
	cfg AdaptiveConfig
}

// NewAdaptive returns an adaptive threshold controller.
func NewAdaptive(cfg AdaptiveConfig) *AdaptivePolicy {
	return &AdaptivePolicy{cfg: cfg.defaults()}
}

// Config returns the effective tuning.
func (p *AdaptivePolicy) Config() AdaptiveConfig { return p.cfg }

// Name implements Policy.
func (p *AdaptivePolicy) Name() string { return "adaptive" }

// Adjust implements Policy.
func (p *AdaptivePolicy) Adjust(cur uint64, in PolicyInput) uint64 {
	min := p.cfg.Min
	if min < MinBytes {
		min = MinBytes
	}
	if cur < min {
		cur = min
	}
	var queueFrac, occFrac, backlogFrac float64
	if in.QueueCap > 0 {
		queueFrac = float64(in.QueueDepth) / float64(in.QueueCap)
	}
	if in.TableCap > 0 {
		occFrac = float64(in.TableUsed) / float64(in.TableCap)
	}
	if in.Slow.QueueCapPkts > 0 {
		backlogFrac = float64(in.Slow.MaxClassPkts) / float64(in.Slow.QueueCapPkts)
	}
	slowPain := in.Slow.ShedRate > p.cfg.ShedHi ||
		in.Slow.HostUtil > p.cfg.HostHi ||
		backlogFrac > p.cfg.BacklogHi
	switch {
	case queueFrac > p.cfg.QueueHi || occFrac > p.cfg.OccHi:
		cur = uint64(float64(cur)*p.cfg.Up) + 1
	case slowPain:
		cur = uint64(float64(cur) * p.cfg.Down)
	case queueFrac < p.cfg.QueueLo && occFrac < p.cfg.OccLo:
		cur = uint64(float64(cur) * p.cfg.Down)
	}
	if cur < min {
		cur = min
	}
	if max := p.cfg.Max; max > min && cur > max {
		cur = max
	}
	return cur
}
