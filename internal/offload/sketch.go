package offload

// Sketch is a count-min sketch with conservative update — the
// heavy-hitter estimator in front of the rule-table installer (the
// "elastic sketch" role in the fast-path/slow-path split). Each row
// hashes the flow key with its own salt; an update raises only the
// counters that would otherwise under-report the flow, so small flows
// colliding with an elephant inflate its row counters far less than a
// plain count-min would.
//
// Decay is periodic halving (Halve, driven by the controller's window
// timer): estimates track the current window's byte volume instead of
// the run total, so a flow that goes quiet falls under the demotion cut
// within a few windows.
//
// The sketch is deterministic (fixed salts, no map iteration) and the
// update path allocates nothing — it runs once per packet on the NIC
// service path.
type Sketch struct {
	rows int
	mask uint32 // cols-1 (cols is a power of two)
	cols int
	// cnt is the rows×cols counter matrix, row-major.
	cnt []uint64
	// salts decorrelate the row hashes.
	salts [sketchMaxRows]uint64
	// total is the byte volume absorbed since the last halving; the
	// classic count-min analysis bounds the expected overestimate of
	// any key by total/cols per row.
	total uint64
}

// sketchMaxRows bounds the row count so Update can hold its per-row
// indices in a stack array (no per-packet allocation).
const sketchMaxRows = 8

// NewSketch builds a rows×cols sketch; cols is rounded up to a power of
// two. rows is clamped to [1, 8]; typical configurations use 3–4 rows.
func NewSketch(rows, cols int) *Sketch {
	if rows < 1 {
		rows = 1
	}
	if rows > sketchMaxRows {
		rows = sketchMaxRows
	}
	if cols < 16 {
		cols = 16
	}
	c := 16
	for c < cols {
		c <<= 1
	}
	s := &Sketch{rows: rows, cols: c, mask: uint32(c - 1)}
	s.cnt = make([]uint64, rows*c)
	// Fixed splitmix64 stream: deterministic across runs, distinct per
	// row.
	x := uint64(0x9e3779b97f4a7c15)
	for r := 0; r < rows; r++ {
		x += 0x9e3779b97f4a7c15
		s.salts[r] = fmix64(x)
	}
	return s
}

// Rows and Cols report the sketch geometry.
func (s *Sketch) Rows() int { return s.rows }
func (s *Sketch) Cols() int { return s.cols }

// Update adds n bytes to key's counters (conservative update) and
// returns the new estimate. A count-min estimate never under-reports:
// the returned value is ≥ the key's true byte volume this window.
//
//fv:hotpath
func (s *Sketch) Update(key, n uint64) uint64 {
	var idx [sketchMaxRows]uint32
	est := ^uint64(0)
	base := 0
	for r := 0; r < s.rows; r++ {
		i := uint32(fmix64(key^s.salts[r])) & s.mask
		idx[r] = i
		if v := s.cnt[base+int(i)]; v < est {
			est = v
		}
		base += s.cols
	}
	est += n
	base = 0
	for r := 0; r < s.rows; r++ {
		p := base + int(idx[r])
		if s.cnt[p] < est {
			s.cnt[p] = est
		}
		base += s.cols
	}
	s.total += n
	return est
}

// Estimate returns the current estimate for key without updating.
//
//fv:hotpath
func (s *Sketch) Estimate(key uint64) uint64 {
	est := ^uint64(0)
	base := 0
	for r := 0; r < s.rows; r++ {
		i := uint32(fmix64(key^s.salts[r])) & s.mask
		if v := s.cnt[base+int(i)]; v < est {
			est = v
		}
		base += s.cols
	}
	return est
}

// Halve decays every counter (and the collision-bound accumulator) by
// half — the controller calls it once per observation window.
func (s *Sketch) Halve() {
	for i := range s.cnt {
		s.cnt[i] >>= 1
	}
	s.total >>= 1
}

// ErrorBound returns the expected per-key overestimate of one row,
// total/cols — the telemetry-exported sketch accuracy indicator. Taking
// the min over rows, the true expected error is lower; this is the
// conservative figure.
func (s *Sketch) ErrorBound() uint64 {
	return s.total / uint64(s.cols)
}

// fmix64 is the MurmurHash3 finalizer: a cheap full-avalanche mix.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
