package offload

import "flowvalve/internal/telemetry"

// offloadTel holds the controller's attached metric handles. The
// controller is single-threaded under the DES; gauges are Set and
// counter deltas Added once per control tick (never per packet), so
// attaching telemetry costs the packet path nothing.
type offloadTel struct {
	flows     *telemetry.Gauge
	queue     *telemetry.Gauge
	threshold *telemetry.Gauge
	sketchErr *telemetry.Gauge

	installs   *telemetry.Counter
	demotions  *telemetry.Counter
	queueDrops *telemetry.Counter
	staleSkips *telemetry.Counter
	fastPkts   *telemetry.Counter
	slowPkts   *telemetry.Counter
	fastBytes  *telemetry.Counter
	slowBytes  *telemetry.Counter

	// last is the counter state already exported; each tick exports the
	// delta since.
	last Stats
}

// AttachTelemetry wires the controller into a metrics registry.
//
//	fv_offload_flows                  flows currently on the NIC fast path
//	fv_offload_queue_depth            rule-install queue backlog
//	fv_offload_threshold_bytes        current offload threshold
//	fv_offload_sketch_error_bytes     expected sketch overestimate
//	fv_offload_installs_total         rules installed
//	fv_offload_demotions_total        rules evicted (flows demoted)
//	fv_offload_queue_drops_total      install candidates refused (backpressure)
//	fv_offload_stale_skips_total      queued candidates gone cold before install
//	fv_offload_fast_packets_total     packets served on the fast path
//	fv_offload_slow_packets_total     packets detoured to the host slow path
//	fv_offload_fast_bytes_total       wire bytes on the fast path
//	fv_offload_slow_bytes_total       wire bytes on the slow path
//
// The slow-path share — the headline figure — is
// fv_offload_slow_packets_total / (fast+slow).
func (c *Controller) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		c.tel = nil
		return
	}
	pol := telemetry.Label{Key: "policy", Value: c.cfg.Policy.Name()}
	t := &offloadTel{
		flows: reg.Gauge("fv_offload_flows",
			"Flows currently holding a NIC fast-path rule.", pol),
		queue: reg.Gauge("fv_offload_queue_depth",
			"Install candidates waiting for rule-channel budget.", pol),
		threshold: reg.Gauge("fv_offload_threshold_bytes",
			"Current offload threshold in window bytes.", pol),
		sketchErr: reg.Gauge("fv_offload_sketch_error_bytes",
			"Expected count-min overestimate per key (total/cols).", pol),
		installs: reg.Counter("fv_offload_installs_total",
			"Fast-path rules installed.", pol),
		demotions: reg.Counter("fv_offload_demotions_total",
			"Fast-path rules evicted because the flow went cold.", pol),
		queueDrops: reg.Counter("fv_offload_queue_drops_total",
			"Install candidates refused by a full queue (backpressure).", pol),
		staleSkips: reg.Counter("fv_offload_stale_skips_total",
			"Queued candidates whose demand decayed below the threshold.", pol),
		fastPkts: reg.Counter("fv_offload_fast_packets_total",
			"Packets observed on offloaded (fast-path) flows.", pol),
		slowPkts: reg.Counter("fv_offload_slow_packets_total",
			"Packets observed on host (slow-path) flows.", pol),
		fastBytes: reg.Counter("fv_offload_fast_bytes_total",
			"Wire bytes observed on offloaded (fast-path) flows.", pol),
		slowBytes: reg.Counter("fv_offload_slow_bytes_total",
			"Wire bytes observed on host (slow-path) flows.", pol),
	}
	c.tel = t
	c.exportTick()
}

// exportTick publishes the tick-granularity view: gauges get the current
// values, counters the deltas accumulated since the previous export.
func (c *Controller) exportTick() {
	t := c.tel
	t.flows.Set(float64(len(c.entries)))
	t.queue.Set(float64(c.qlen))
	t.threshold.Set(float64(c.threshold))
	t.sketchErr.Set(float64(c.sketch.ErrorBound()))

	s := c.stats
	t.installs.Add(int64(s.Installs - t.last.Installs))
	t.demotions.Add(int64(s.Demotions - t.last.Demotions))
	t.queueDrops.Add(int64(s.QueueDrops - t.last.QueueDrops))
	t.staleSkips.Add(int64(s.StaleSkips - t.last.StaleSkips))
	t.fastPkts.Add(int64(s.FastPkts - t.last.FastPkts))
	t.slowPkts.Add(int64(s.SlowPkts - t.last.SlowPkts))
	t.fastBytes.Add(int64(s.FastBytes - t.last.FastBytes))
	t.slowBytes.Add(int64(s.SlowBytes - t.last.SlowBytes))
	t.last = s
}
