package token

import (
	"math"
	"sync"
	"testing"
)

func TestEstimatorInstantaneous(t *testing.T) {
	e := NewEstimator(1) // no smoothing
	e.Count(1000)
	consumed, rate := e.Roll(1e9) // one second
	if consumed != 1000 {
		t.Fatalf("consumed = %d, want 1000", consumed)
	}
	if rate != 1000 {
		t.Fatalf("rate = %g B/s, want 1000", rate)
	}
}

func TestEstimatorEWMAConverges(t *testing.T) {
	e := NewEstimator(0.25)
	for i := 0; i < 100; i++ {
		e.Count(500)
		e.Roll(1e9)
	}
	if r := e.Rate(); math.Abs(r-500) > 1 {
		t.Fatalf("rate = %g, want ≈500 after convergence", r)
	}
}

func TestEstimatorEWMASmooths(t *testing.T) {
	e := NewEstimator(0.25)
	e.Count(1000)
	e.Roll(1e9)
	if r := e.Rate(); r != 250 {
		t.Fatalf("first sample rate = %g, want 0.25×1000 = 250", r)
	}
}

func TestEstimatorZeroDtKeepsRate(t *testing.T) {
	e := NewEstimator(1)
	e.Count(100)
	e.Roll(1e9)
	before := e.Rate()
	e.Count(50)
	consumed, rate := e.Roll(0)
	if consumed != 50 {
		t.Fatalf("consumed = %d, want 50", consumed)
	}
	if rate != before {
		t.Fatalf("rate changed on zero dt: %g → %g", before, rate)
	}
}

func TestEstimatorReset(t *testing.T) {
	e := NewEstimator(1)
	e.Count(100)
	e.Roll(1e9)
	e.Count(10)
	e.Reset()
	if e.Rate() != 0 || e.Pending() != 0 {
		t.Fatal("reset did not clear estimator")
	}
}

func TestEstimatorInvalidAlphaDefaults(t *testing.T) {
	e := NewEstimator(0) // invalid → alpha 1
	e.Count(100)
	_, rate := e.Roll(1e9)
	if rate != 100 {
		t.Fatalf("rate = %g, want instantaneous 100", rate)
	}
}

func TestEstimatorConcurrentCount(t *testing.T) {
	e := NewEstimator(1)
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e.Count(3)
			}
		}()
	}
	wg.Wait()
	consumed, _ := e.Roll(1e9)
	if consumed != workers*per*3 {
		t.Fatalf("consumed = %d, want %d", consumed, workers*per*3)
	}
}

func TestAtomicFloat64RoundTrip(t *testing.T) {
	var f AtomicFloat64
	if f.Load() != 0 {
		t.Fatal("zero value not 0")
	}
	for _, v := range []float64{1.5, -3.25, 1e9, 0} {
		f.Store(v)
		if got := f.Load(); got != v {
			t.Fatalf("round trip %g → %g", v, got)
		}
	}
}
