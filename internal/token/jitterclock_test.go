package token

import (
	"testing"

	"flowvalve/internal/clock"
)

// Outside every window (and with none installed) the jittered clock is
// the base clock exactly.
func TestJitteredClockTransparent(t *testing.T) {
	base := clock.NewManual(100)
	jc := NewJitteredClock(base)
	if got := jc.Now(); got != 100 {
		t.Fatalf("no-jitter Now = %d, want 100", got)
	}
	jc.SetJitter(7, []JitterWindow{{FromNs: 1000, ToNs: 2000, AmpNs: 50}})
	base.Set(500)
	if got := jc.Now(); got != 500 {
		t.Fatalf("pre-window Now = %d, want 500", got)
	}
	base.Set(5000)
	if got := jc.Now(); got != 5000 {
		t.Fatalf("post-window Now = %d, want 5000", got)
	}
}

// Inside a window the perturbation is bounded by ±AmpNs, deterministic
// in (seed, time), and the stream never steps backward.
func TestJitteredClockBoundedDeterministicMonotonic(t *testing.T) {
	const amp = int64(50)
	run := func(seed uint64) []int64 {
		base := clock.NewManual(0)
		jc := NewJitteredClock(base)
		jc.SetJitter(seed, []JitterWindow{{FromNs: 1000, ToNs: 10000, AmpNs: amp}})
		var out []int64
		for ts := int64(1000); ts < 10000; ts += 13 {
			base.Set(ts)
			now := jc.Now()
			// The raw offset is bounded by ±amp and the monotonic clamp
			// only raises readings toward earlier (also bounded) values,
			// so every sample stays within ±amp of base time.
			if d := now - ts; d > amp || d < -amp {
				t.Fatalf("jitter at %d escaped bound: now=%d", ts, now)
			}
			if len(out) > 0 && now < out[len(out)-1] {
				t.Fatalf("clock stepped back: %d after %d", now, out[len(out)-1])
			}
			out = append(out, now)
		}
		return out
	}
	a := run(7)
	b := run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at sample %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter streams")
	}
}

// Clearing the windows restores the base clock but never rewinds the
// observed stream below a perturbed-ahead reading.
func TestJitteredClockClearKeepsFloor(t *testing.T) {
	base := clock.NewManual(0)
	jc := NewJitteredClock(base)
	jc.SetJitter(3, []JitterWindow{{FromNs: 0, ToNs: 1000, AmpNs: 100}})
	var peak, lastBase int64
	for ts := int64(0); ts < 1000; ts += 7 {
		base.Set(ts)
		lastBase = ts
		if now := jc.Now(); now > peak {
			peak = now
		}
	}
	jc.SetJitter(0, nil)
	if peak > lastBase+2 {
		// Base still trails the perturbed-ahead floor: the floor wins.
		base.Set(lastBase + 1)
		if got := jc.Now(); got < peak {
			t.Fatalf("cleared clock rewound: %d < floor %d", got, peak)
		}
	}
	base.Set(peak + 1000)
	if got := jc.Now(); got != peak+1000 {
		t.Fatalf("cleared clock = %d, want base %d", got, peak+1000)
	}
}
