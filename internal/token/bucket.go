// Package token implements the token-bucket machinery FlowValve builds on:
// two-color meters backed by atomically updated buckets, shadow buckets
// that publish lendable bandwidth, and dataplane rate estimators.
//
// On the Netronome NP the meter is a single hardware instruction executing
// on transactional memory; here it is a lock-free conditional subtract on
// an atomic counter, which preserves the property the paper relies on —
// many cores can meter concurrently without locks and without losing
// tokens to races.
//
// Tokens are denominated in bytes: forwarding a packet of L bytes consumes
// L tokens (the paper's L_P). Token rates are bytes per second; the
// paper's bits-per-cycle formulation (θ = b/f) is the same quantity
// re-expressed in NP clock units.
package token

import (
	"sync/atomic"

	"flowvalve/internal/fvassert"
)

// Color is the two-color meter result.
type Color int

const (
	// Green means the bucket held enough tokens and they were consumed.
	Green Color = iota + 1
	// Red means the bucket lacked tokens; none were consumed.
	Red
)

// String returns the color name for logs and test failures.
func (c Color) String() string {
	switch c {
	case Green:
		return "green"
	case Red:
		return "red"
	default:
		return "invalid"
	}
}

// Bucket is a token bucket safe for concurrent metering. Refill and
// configuration are expected to happen under the owning class's update
// lock (one writer), while TryConsume may run from any number of cores.
//
// The zero value is an empty bucket with no burst allowance; use Reset to
// configure it.
type Bucket struct {
	tokens atomic.Int64
	burst  atomic.Int64
}

// Reset sets the burst capacity and fills the bucket to exactly that
// capacity, discarding current content. Used at (re)configuration and by
// the expired-status removal subprocedure.
func (b *Bucket) Reset(burst int64) {
	if burst < 0 {
		burst = 0
	}
	b.burst.Store(burst)
	b.tokens.Store(burst)
}

// SetBurst changes the capacity without refilling. Existing tokens above
// the new capacity are clipped.
func (b *Bucket) SetBurst(burst int64) {
	if burst < 0 {
		burst = 0
	}
	b.burst.Store(burst)
	for {
		cur := b.tokens.Load()
		if cur <= burst {
			return
		}
		if b.tokens.CompareAndSwap(cur, burst) {
			return
		}
	}
}

// Burst returns the configured capacity.
func (b *Bucket) Burst() int64 { return b.burst.Load() }

// Tokens returns the current token count. The value may be stale by the
// time the caller uses it; it is for monitoring and tests.
func (b *Bucket) Tokens() int64 { return b.tokens.Load() }

// TryConsume atomically takes n tokens if at least n are present and
// reports whether it did. This is the meter primitive: Green on success,
// Red on failure, with no partial consumption.
//
//fv:hotpath
func (b *Bucket) TryConsume(n int64) bool {
	for {
		cur := b.tokens.Load()
		if cur < n {
			return false
		}
		if b.tokens.CompareAndSwap(cur, cur-n) {
			return true
		}
	}
}

// Refill adds n tokens, clamped to the burst capacity, and returns how
// many tokens the bucket actually absorbed (the rest "overflow" the
// bucket — FlowValve routes a leaf's overflow to its shadow bucket so
// each epoch mints exactly θ·ΔT tokens in total). Negative n is ignored.
// Refill is called from the update subprocedure under the class lock, so
// a simple load-add-clamp CAS loop suffices.
//
//fv:hotpath
func (b *Bucket) Refill(n int64) (absorbed int64) {
	if n <= 0 {
		return 0
	}
	burst := b.burst.Load()
	for {
		cur := b.tokens.Load()
		next := cur + n
		if next > burst {
			next = burst
		}
		if next == cur {
			return 0
		}
		if b.tokens.CompareAndSwap(cur, next) {
			absorbed = next - cur
			if fvassert.Enabled && (absorbed < 0 || absorbed > n) {
				fvassert.Failf("token: Refill(%d) absorbed %d (tokens %d→%d, burst %d): conservation violated",
					n, absorbed, cur, next, burst)
			}
			return absorbed
		}
	}
}

// Drain removes all tokens and returns how many were removed.
func (b *Bucket) Drain() int64 {
	for {
		cur := b.tokens.Load()
		if b.tokens.CompareAndSwap(cur, 0) {
			return cur
		}
	}
}

// Meter classifies a packet of size bytes against the bucket: Green if
// tokens were available (and consumes them), Red otherwise. It mirrors the
// NP's atomic meter instruction wrapped by the paper's meter function.
//
//fv:hotpath
func (b *Bucket) Meter(size int64) Color {
	if b.TryConsume(size) {
		return Green
	}
	return Red
}
