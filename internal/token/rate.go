package token

import (
	"math"
	"sync/atomic"
)

// AtomicFloat64 is a float64 readable and writable without locks, used to
// publish token rates (θ) and consumption-rate estimates (Γ) from a
// class's update subprocedure to every other core. Writers are serialized
// by the class update lock; readers may race freely.
type AtomicFloat64 struct {
	bits atomic.Uint64
}

// Store publishes v.
func (f *AtomicFloat64) Store(v float64) { f.bits.Store(math.Float64bits(v)) }

// Load returns the most recently published value.
func (f *AtomicFloat64) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// Estimator measures a class's token consumption rate Γ from the bytes
// counted between update epochs, smoothing with an EWMA so that one short
// epoch does not whip the rate calculations of sibling classes around.
//
// The counter is incremented atomically by every core that forwards a
// packet of the class (the paper's count() on the Consume_Counter); the
// epoch roll happens under the class update lock.
type Estimator struct {
	counted atomic.Int64  // bytes since last epoch roll
	rate    AtomicFloat64 // smoothed Γ, bytes/second
	alpha   float64       // EWMA weight of the newest sample
}

// NewEstimator returns an estimator with the given EWMA alpha in (0, 1].
// Alpha 1 disables smoothing (instantaneous rate).
func NewEstimator(alpha float64) *Estimator {
	if alpha <= 0 || alpha > 1 {
		alpha = 1
	}
	return &Estimator{alpha: alpha}
}

// Count records that n bytes of the class were forwarded. Safe from any
// core.
//
//fv:hotpath
func (e *Estimator) Count(n int64) { e.counted.Add(n) }

// Roll closes the current epoch of dt nanoseconds: it converts the counted
// bytes to an instantaneous rate, folds it into the EWMA, publishes the
// result, and returns (consumedBytes, smoothedRate). Roll must be called
// under the class update lock. dt <= 0 leaves the estimate unchanged.
func (e *Estimator) Roll(dt int64) (consumed int64, rate float64) {
	consumed = e.counted.Swap(0)
	if dt <= 0 {
		return consumed, e.rate.Load()
	}
	inst := float64(consumed) / (float64(dt) / 1e9)
	prev := e.rate.Load()
	next := e.alpha*inst + (1-e.alpha)*prev
	e.rate.Store(next)
	return consumed, next
}

// Rate returns the current smoothed estimate in bytes per second.
func (e *Estimator) Rate() float64 { return e.rate.Load() }

// Reset zeroes the counter and the estimate (expired-status removal).
func (e *Estimator) Reset() {
	e.counted.Store(0)
	e.rate.Store(0)
}

// Pending returns bytes counted since the last Roll, for tests and
// monitoring.
func (e *Estimator) Pending() int64 { return e.counted.Load() }
