package token

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestBucketResetFills(t *testing.T) {
	var b Bucket
	b.Reset(1000)
	if b.Tokens() != 1000 || b.Burst() != 1000 {
		t.Fatalf("after Reset: tokens=%d burst=%d, want 1000/1000", b.Tokens(), b.Burst())
	}
}

func TestTryConsumeExact(t *testing.T) {
	var b Bucket
	b.Reset(100)
	if !b.TryConsume(100) {
		t.Fatal("consume of exactly available tokens failed")
	}
	if b.TryConsume(1) {
		t.Fatal("consume from empty bucket succeeded")
	}
}

func TestMeterColors(t *testing.T) {
	var b Bucket
	b.Reset(150)
	if c := b.Meter(100); c != Green {
		t.Fatalf("first meter = %v, want green", c)
	}
	if c := b.Meter(100); c != Red {
		t.Fatalf("second meter = %v, want red (only 50 left)", c)
	}
	if b.Tokens() != 50 {
		t.Fatalf("red meter consumed tokens: %d left, want 50", b.Tokens())
	}
}

func TestRefillClampsToBurst(t *testing.T) {
	var b Bucket
	b.Reset(100)
	b.TryConsume(60)
	b.Refill(1000)
	if b.Tokens() != 100 {
		t.Fatalf("tokens = %d, want clamped to burst 100", b.Tokens())
	}
	b.Refill(-5) // ignored
	if b.Tokens() != 100 {
		t.Fatal("negative refill changed tokens")
	}
}

func TestSetBurstClips(t *testing.T) {
	var b Bucket
	b.Reset(100)
	b.SetBurst(40)
	if b.Tokens() != 40 {
		t.Fatalf("tokens = %d, want clipped to 40", b.Tokens())
	}
	b.SetBurst(80) // raising burst does not mint tokens
	if b.Tokens() != 40 {
		t.Fatalf("tokens = %d, want still 40", b.Tokens())
	}
}

func TestDrain(t *testing.T) {
	var b Bucket
	b.Reset(77)
	if got := b.Drain(); got != 77 {
		t.Fatalf("Drain() = %d, want 77", got)
	}
	if b.Tokens() != 0 {
		t.Fatal("bucket not empty after drain")
	}
}

// The core concurrency property the NP meter instruction provides: under
// concurrent metering, consumed tokens never exceed what was supplied.
func TestConcurrentMeterNeverOverConsumes(t *testing.T) {
	var b Bucket
	const supply = 100000
	b.Reset(supply)
	const workers = 8
	var wg sync.WaitGroup
	consumed := make([]int64, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b.TryConsume(7) {
				consumed[w] += 7
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, c := range consumed {
		total += c
	}
	if total > supply {
		t.Fatalf("consumed %d > supplied %d", total, supply)
	}
	if left := b.Tokens(); left+total != supply {
		t.Fatalf("accounting mismatch: left %d + consumed %d != %d", left, total, supply)
	}
}

// Property: any interleaving of refills and consumes keeps
// 0 <= tokens <= burst and conserves the token ledger.
func TestBucketLedgerProperty(t *testing.T) {
	check := func(burst uint16, ops []int16) bool {
		var b Bucket
		cap64 := int64(burst) + 1
		b.Reset(cap64)
		var consumed, supplied int64
		supplied = cap64
		for _, op := range ops {
			n := int64(op)
			if n >= 0 {
				before := b.Tokens()
				b.Refill(n)
				supplied += b.Tokens() - before // effective refill after clamp
			} else if b.TryConsume(-n) {
				consumed += -n
			}
			tok := b.Tokens()
			if tok < 0 || tok > cap64 {
				return false
			}
			if tok != supplied-consumed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestColorString(t *testing.T) {
	if Green.String() != "green" || Red.String() != "red" || Color(0).String() != "invalid" {
		t.Fatal("Color.String mismatch")
	}
}
