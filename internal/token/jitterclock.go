package token

import (
	"sync/atomic"

	"flowvalve/internal/clock"
)

// JitterWindow is one interval during which a JitteredClock perturbs its
// base time source by up to ±AmpNs.
type JitterWindow struct {
	FromNs int64
	ToNs   int64
	AmpNs  int64
}

// jitterState is the installed jitter configuration, swapped atomically
// so SetJitter is safe against concurrent Now readers.
type jitterState struct {
	seed    uint64
	windows []JitterWindow
}

// JitteredClock wraps a clock.Clock and injects deterministic, seeded
// jitter inside configured windows — the token-clock fault surface. The
// scheduler's refill arithmetic (θ·ΔT) reads this clock, so jitter
// stretches and squeezes epochs exactly as an unstable NP timestamp
// counter would, while the DES engine keeps its own unperturbed clock
// (causality is never affected, only the token math's view of time).
//
// Jitter is a pure function of (seed, quantized time), so runs are
// reproducible, and reads are clamped monotonic: a negative jitter step
// can plateau time but never rewind it. With no jitter installed the
// clock is one atomic load and a nil check over the base source.
type JitteredClock struct {
	base  clock.Clock
	state atomic.Pointer[jitterState]
	last  atomic.Int64 // monotonic floor over the jittered stream
}

var _ clock.Clock = (*JitteredClock)(nil)

// NewJitteredClock wraps base with no jitter installed.
func NewJitteredClock(base clock.Clock) *JitteredClock {
	return &JitteredClock{base: base}
}

// Base returns the wrapped time source.
func (c *JitteredClock) Base() clock.Clock { return c.base }

// SetJitter installs the jitter windows (replacing any previous set).
// An empty set restores the base clock exactly; time continues from the
// monotonic floor, so a perturbed-ahead reading never steps back.
func (c *JitteredClock) SetJitter(seed uint64, windows []JitterWindow) {
	if len(windows) == 0 {
		c.state.Store(nil)
		return
	}
	ws := make([]JitterWindow, len(windows))
	copy(ws, windows)
	c.state.Store(&jitterState{seed: seed, windows: ws})
}

// splitmix64 matches faults.Splitmix64; duplicated so the token package
// stays dependency-free below the fault layer.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Now returns the (possibly jittered) current time. Never decreasing.
func (c *JitteredClock) Now() int64 {
	now := c.base.Now()
	st := c.state.Load()
	if st == nil {
		// Fault-free fast path; clamp only if a previous jitter window
		// pushed the observed stream ahead of base time.
		if last := c.last.Load(); last > now {
			return last
		}
		return now
	}
	t := now
	for i := range st.windows {
		w := &st.windows[i]
		if now >= w.FromNs && now < w.ToNs && w.AmpNs > 0 {
			// Quantize time at the jitter amplitude so the offset holds
			// still long enough to visibly stretch/squeeze epochs,
			// then hash to a deterministic offset in [-Amp, +Amp].
			q := uint64(now / w.AmpNs)
			off := int64(splitmix64(q^st.seed)%uint64(2*w.AmpNs+1)) - w.AmpNs
			t = now + off
			break
		}
	}
	// Monotonic clamp: publish max(t, last).
	for {
		last := c.last.Load()
		if t <= last {
			return last
		}
		if c.last.CompareAndSwap(last, t) {
			return t
		}
	}
}
