//go:build fvassert

package token

import (
	"strings"
	"testing"
)

// TestRefillAssertionFiresOnCorruption proves the fvassert layer is
// live under the tag: a bucket whose token count has been corrupted
// above its burst makes the next Refill absorb a negative amount, which
// the conservation assertion must turn into a panic rather than a
// silently wrong shadow-bucket credit.
func TestRefillAssertionFiresOnCorruption(t *testing.T) {
	var b Bucket
	b.Reset(100)
	// Simulate a corrupted state no public API can produce: more tokens
	// than burst. In-package access to the atomic makes the corruption
	// deterministic.
	b.tokens.Store(200)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("Refill on a corrupted bucket did not panic under -tags fvassert")
		}
		msg, ok := r.(string)
		if !ok || !strings.HasPrefix(msg, "fvassert: token:") {
			t.Fatalf("panic = %v, want fvassert: token:-prefixed message", r)
		}
	}()
	b.Refill(10)
}
