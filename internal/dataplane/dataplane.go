// Package dataplane defines the one interface every FlowValve scheduling
// backend speaks — the offloaded scheduling function on the NIC model and
// the software baselines (kernel HTB, kernel PRIO, DPDK QoS) alike — so
// the experiment harnesses, the benchmark tools, and the public facade
// drive all of them through the same calls instead of per-backend glue.
//
// Two planes are covered:
//
//   - Scheduler is the label-level hot path (Algorithm 1): a synchronous
//     forwarding decision per packet, with a batched variant that
//     amortizes clock reads, epoch checks, and estimator updates across a
//     burst — the software analogue of the NP running many packet
//     contexts through one pipeline pass.
//
//   - Qdisc is the discrete-event backend: packets go in via Enqueue,
//     deliveries and drops come back via Callbacks, and cumulative
//     counters come out of QdiscStats. Optional capabilities (host-CPU
//     accounting, backlog, telemetry, live policy swap) are discovered by
//     interface probes, never by concrete types.
package dataplane

import (
	"flowvalve/internal/faults"
	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/telemetry"
)

// Verdict is the forwarding decision of the scheduling function.
type Verdict int

const (
	// Forward admits the packet to the transmit buffer.
	Forward Verdict = iota + 1
	// Drop discards the packet — the specialized tail drop.
	Drop
)

// String returns the verdict name.
func (v Verdict) String() string {
	switch v {
	case Forward:
		return "forward"
	case Drop:
		return "drop"
	default:
		return "invalid"
	}
}

// Decision reports the outcome of scheduling one packet, with enough
// detail for the NIC model to charge cycle costs and for tests to assert
// on the borrowing path.
type Decision struct {
	Verdict Verdict
	// Marked is true when the packet was forwarded carrying a
	// congestion mark instead of being dropped (Config.MarkOnRed).
	Marked bool
	// Borrowed is true when the packet passed on a lender's shadow
	// bucket rather than its own class bucket.
	Borrowed bool
	// Lender is the class whose shadow bucket admitted the packet
	// (nil unless Borrowed).
	Lender *tree.Class
	// Updates is the number of epoch updates executed while producing
	// this decision. Within a ScheduleBatch call each class is updated
	// at most once, and the cost lands on the first decision in the
	// batch that touched the class — summing Updates over a batch gives
	// the batch's total, so per-decision cycle charging stays correct.
	Updates int
	// LockMisses counts try-lock failures (another core held the class
	// lock) while producing this decision — only meaningful under real
	// concurrency. Attributed like Updates: at most once per class per
	// batch, on the decision that attempted the update.
	LockMisses int
	// Batched is the number of packets scheduled by the call that
	// produced this decision: 1 for Schedule, the batch length for
	// every decision of a ScheduleBatch call. Cycle models use it to
	// charge per-call fixed costs once per batch instead of once per
	// packet.
	Batched int
}

// Request is one packet's scheduling input in a batch.
type Request struct {
	// Label is the packet's QoS label (hierarchy path + borrow list).
	Label *tree.Label
	// Size is the packet size in bytes to charge against the buckets
	// (wire bytes when enforcing link rates).
	Size int
}

// Scheduler is the label-level scheduling function: Algorithm 1 as a
// synchronous call. Implementations must be safe for concurrent use.
type Scheduler interface {
	// Schedule decides the fate of one packet of `size` bytes carrying
	// QoS label lbl.
	Schedule(lbl *tree.Label, size int) Decision
	// ScheduleBatch decides a burst of packets in one pass, writing
	// out[i] for reqs[i]. len(out) must be at least len(reqs). The
	// verdict sequence is identical to calling Schedule per request at
	// batch size 1; at larger sizes per-packet work (clock reads, epoch
	// checks, estimator updates, trace emission) is amortized across
	// the batch while admitted byte totals stay conformant to the same
	// policy (the token supply is epoch-driven, not call-driven).
	ScheduleBatch(reqs []Request, out []Decision)
}

// Callbacks connects a Qdisc to the rest of the simulation. Either field
// may be nil.
type Callbacks struct {
	// OnDeliver fires when a packet finishes transmitting on the wire;
	// p.EgressAt is set.
	OnDeliver func(p *packet.Packet)
	// OnDrop fires when the backend discards a packet.
	OnDrop func(p *packet.Packet)
}

// Stats are the cumulative counters every backend can report.
type Stats struct {
	// Enqueued counts packets accepted by the backend (injections on
	// the NIC model, queue admissions on the baselines).
	Enqueued uint64
	// Delivered counts packets that finished transmitting on the wire.
	Delivered uint64
	// Dropped counts packets the backend discarded, for any reason.
	Dropped uint64
}

// Qdisc is a discrete-event scheduling backend. All four backends
// (FlowValve-on-NIC, HTB, PRIO, DPDK QoS) implement it; harnesses drive
// them exclusively through this interface plus the capability probes
// below.
type Qdisc interface {
	// Enqueue hands one packet to the backend at the current simulation
	// time.
	Enqueue(p *packet.Packet)
	// QdiscStats returns the cumulative counters.
	QdiscStats() Stats
}

// HostAccountant is implemented by backends that burn host CPU on
// scheduling (the software baselines). Offloaded backends simply do not
// implement it — their host share is zero.
type HostAccountant interface {
	// HostCores reports the mean host cores consumed over a run of the
	// given duration.
	HostCores(durationNs int64) float64
}

// Backlogger is implemented by backends whose queue occupancy is
// observable as a packet count.
type Backlogger interface {
	Backlog() int
}

// TelemetrySink is implemented by backends that can register their
// metric families with an observability registry.
type TelemetrySink interface {
	AttachTelemetry(reg *telemetry.Registry)
}

// Swapper is implemented by backends whose scheduling function can be
// replaced live (the facade's policy-swap path, mirrored on the NIC
// model). Drivers probe for it before attempting a mid-run swap.
type Swapper interface {
	// Swap replaces the backend's scheduling function; a nil scheduler
	// turns the backend into a pass-through forwarder.
	Swap(s Scheduler)
}

// FlowCacheStats is a snapshot of a backend's exact-match flow cache
// (the classification fast path). Counters are cumulative since the
// cache was created or last flushed; Size/Capacity describe the table.
type FlowCacheStats struct {
	// Hits and Misses count lookup outcomes.
	Hits, Misses uint64
	// Evictions counts live entries displaced to admit new flows.
	Evictions uint64
	// ParseErrors counts frames the parser rejected on the miss path.
	ParseErrors uint64
	// Invalidations counts entries removed by targeted invalidation.
	Invalidations uint64
	// Size is the live entry count; Negative how many of those are
	// cached matched-nothing results.
	Size, Negative int
	// Capacity is the entry bound; Shards the concurrency sharding.
	Capacity, Shards int
}

// FlowCacher is implemented by backends with an observable flow cache
// (the NIC model; the software baselines classify per packet and do
// not). Harnesses probe for it to report cache behaviour under churn.
type FlowCacher interface {
	FlowCacheStats() FlowCacheStats
}

// Sharder is implemented by scheduling functions that partition the
// class tree across N scheduler shards (core.ShardedScheduler).
// Consumers probe for it to model per-shard feed queues: the NIC
// charges a steering cost per packet and a doorbell per shard lane it
// touches in a burst, and bounds each lane like a hardware feed ring.
// A scheduler that does not implement Sharder — or one reporting a
// single shard — is driven exactly as before.
type Sharder interface {
	// Shards reports the number of scheduler shards (≥ 1).
	Shards() int
	// ShardOf reports which shard owns (and must schedule) the label's
	// leaf class.
	ShardOf(lbl *tree.Label) int
}

// OwnerTabler is an optional Sharder refinement exposing the shard
// ownership partition as a flat table indexed by class ID. Steering
// consumers (the classifier's fused steer pass) prefer it over calling
// ShardOf per flow group: one bounds-checked load replaces a dynamic
// dispatch in the hottest loop of the receive path.
type OwnerTabler interface {
	// OwnerTable returns the ClassID → owning-shard table. The table is
	// immutable after construction and must not be written by callers.
	OwnerTable() []int32
}

// ShardsOf probes s for sharding, returning the shard count and the
// Sharder when s is sharded (shards > 1), or (1, nil) otherwise.
func ShardsOf(s Scheduler) (int, Sharder) {
	if sh, ok := s.(Sharder); ok {
		if n := sh.Shards(); n > 1 {
			return n, sh
		}
	}
	return 1, nil
}

// OffloadStats is a snapshot of a backend's fast-path/slow-path offload
// control plane (internal/offload): heavy-hitter installs against a
// bounded rule channel, demotions, and the traffic split between the NIC
// fast path and the host slow path.
type OffloadStats struct {
	// Enabled is false when the backend has no offload control plane
	// attached; every other field is then zero.
	Enabled bool
	// Offloaded is the number of flows currently holding a fast-path
	// rule; TableCap the rule-table capacity bounding it.
	Offloaded, TableCap int
	// QueueDepth/QueueCap describe the rule-install queue.
	QueueDepth, QueueCap int
	// ThresholdBytes is the current offload threshold (window bytes);
	// SketchErrBytes the heavy-hitter sketch's expected overestimate.
	ThresholdBytes, SketchErrBytes uint64
	// FastPkts/SlowPkts and FastBytes/SlowBytes split observed traffic
	// by path; the slow-path share is SlowPkts/(FastPkts+SlowPkts).
	FastPkts, SlowPkts   uint64
	FastBytes, SlowBytes uint64
	// Installs/Demotions count rule-channel operations; QueueDrops
	// install candidates refused by backpressure; StaleSkips queued
	// candidates gone cold before install; TableFull drain passes cut
	// short by a full rule table.
	Installs, Demotions               uint64
	QueueDrops, StaleSkips, TableFull uint64
	// SlowPathDrops counts packets the overloaded host slow path shed;
	// Invalidations flow-cache entries tombstoned on demotion.
	SlowPathDrops, Invalidations uint64
	// SlowQdisc names the scheduler running on the host slow path
	// ("htb", "prio"; empty when the backend has no scheduled slow
	// path). SlowBacklogPkts is its current queued-packet backlog and
	// SlowMaxClassPkts the deepest single class's share of it.
	SlowQdisc                         string
	SlowBacklogPkts, SlowMaxClassPkts int
	// SlowShed counts packets refused at slow-path admission (projected
	// wait past the bound), SlowQueueDrops packets accepted but dropped
	// by a full per-class queue, and SlowReinjected packets the slow
	// path scheduled and handed back to the NIC transmit path.
	// SlowShed + SlowQueueDrops == SlowPathDrops.
	SlowShed, SlowQueueDrops, SlowReinjected uint64
	// Policy names the active threshold policy.
	Policy string
}

// SlowClassStat is one traffic class's slow-path scorecard: the
// per-class backlog and drop split that replaces the single
// DropSlowPath bucket when the slow path runs a real qdisc.
type SlowClassStat struct {
	// Class is the class name in the scheduling tree.
	Class string
	// BacklogPkts is the class's current slow-path queue depth.
	BacklogPkts int
	// Shed counts admission-bound sheds, QueueDrops full-queue drops.
	Shed, QueueDrops uint64
}

// SlowPathReporter is implemented by backends whose slow path schedules
// per class (the NIC model with AttachOffload); harnesses probe for it
// to break slow-path drops down by class.
type SlowPathReporter interface {
	// SlowPathClasses returns one entry per leaf class, in tree order.
	// It returns nil when no scheduled slow path is attached.
	SlowPathClasses() []SlowClassStat
}

// Offloader is implemented by backends with an attached offload control
// plane (the NIC model when AttachOffload was called). Harnesses probe
// for it to report the fast/slow split and rule-channel pressure.
type Offloader interface {
	OffloadStats() OffloadStats
}

// FaultInjectable is implemented by backends that expose fault-injection
// hook points (the NIC model; the software baselines do not — harnesses
// probe and skip them when a fault plan is configured).
type FaultInjectable interface {
	// ApplyFaults registers the backend's hook points (and those of any
	// attached scheduling function) with the injector. The injector's
	// Arm reports an error if a planned fault kind found no target.
	ApplyFaults(inj *faults.Injector) error
}
