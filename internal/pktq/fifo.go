// Package pktq provides the bounded FIFO queue primitives used to model
// NIC rings (Rx/Tx), traffic-manager queues, and qdisc class queues.
//
// Queues are bounded either by packet count, by byte count, or both —
// hardware rings are slot-bounded while traffic-manager buffers are
// byte-bounded. Enqueueing past a bound fails (tail drop at the caller's
// discretion), mirroring how the real structures behave.
package pktq

import (
	"flowvalve/internal/fvassert"
	"flowvalve/internal/packet"
)

// FIFO is a bounded first-in first-out packet queue implemented as a
// growable ring buffer. The zero value is unbounded; use New to set limits.
//
// FIFO is not safe for concurrent use: the discrete-event simulation is
// single-threaded, and concurrency effects (lock waits on shared queues)
// are modelled explicitly with cycle costs.
type FIFO struct {
	buf      []*packet.Packet
	head     int
	count    int
	bytes    int64
	maxPkts  int
	maxBytes int64

	// Drops counts packets rejected by TryPush since creation.
	Drops uint64
	// DroppedBytes counts bytes rejected by TryPush since creation.
	DroppedBytes uint64
}

// New returns a FIFO bounded to maxPkts packets and maxBytes bytes.
// A zero (or negative) bound means "unlimited" for that dimension.
func New(maxPkts int, maxBytes int64) *FIFO {
	return &FIFO{maxPkts: maxPkts, maxBytes: maxBytes}
}

// Len returns the number of queued packets.
func (q *FIFO) Len() int { return q.count }

// Bytes returns the number of queued bytes (frame sizes, excluding wire
// overhead).
func (q *FIFO) Bytes() int64 { return q.bytes }

// Empty reports whether the queue holds no packets.
func (q *FIFO) Empty() bool { return q.count == 0 }

// Fits reports whether a packet of the given size could be enqueued now.
func (q *FIFO) Fits(size int) bool {
	if q.maxPkts > 0 && q.count >= q.maxPkts {
		return false
	}
	if q.maxBytes > 0 && q.bytes+int64(size) > q.maxBytes {
		return false
	}
	return true
}

// TryPush appends p if it fits and reports success. On failure the packet
// is counted as dropped; the caller owns any further drop handling.
func (q *FIFO) TryPush(p *packet.Packet) bool {
	if !q.Fits(p.Size) {
		q.Drops++
		q.DroppedBytes += uint64(p.Size)
		return false
	}
	q.push(p)
	if fvassert.Enabled &&
		(q.maxPkts > 0 && q.count > q.maxPkts || q.maxBytes > 0 && q.bytes > q.maxBytes) {
		fvassert.Failf("pktq: TryPush admitted past bounds (count %d/%d, bytes %d/%d)",
			q.count, q.maxPkts, q.bytes, q.maxBytes)
	}
	return true
}

// Push appends p unconditionally, growing past any byte bound. It is used
// where the modelled structure blocks instead of dropping. Push still
// respects nothing — bounds are advisory for Push.
func (q *FIFO) Push(p *packet.Packet) { q.push(p) }

func (q *FIFO) push(p *packet.Packet) {
	if q.count == len(q.buf) {
		q.grow()
	}
	tail := q.head + q.count
	if tail >= len(q.buf) {
		tail -= len(q.buf)
	}
	q.buf[tail] = p
	q.count++
	q.bytes += int64(p.Size)
}

func (q *FIFO) grow() {
	newCap := len(q.buf) * 2
	if newCap == 0 {
		newCap = 16
	}
	buf := make([]*packet.Packet, newCap)
	for i := 0; i < q.count; i++ {
		buf[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = buf
	q.head = 0
}

// Pop removes and returns the oldest packet, or nil if the queue is empty.
func (q *FIFO) Pop() *packet.Packet {
	if q.count == 0 {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.count--
	q.bytes -= int64(p.Size)
	if fvassert.Enabled && (q.count < 0 || q.bytes < 0 || q.count == 0 && q.bytes != 0) {
		fvassert.Failf("pktq: Pop left inconsistent occupancy (count %d, bytes %d)", q.count, q.bytes)
	}
	return p
}

// Peek returns the oldest packet without removing it, or nil if empty.
func (q *FIFO) Peek() *packet.Packet {
	if q.count == 0 {
		return nil
	}
	return q.buf[q.head]
}
