package pktq

import (
	"testing"
	"testing/quick"

	"flowvalve/internal/packet"
)

func mk(size int) *packet.Packet {
	var a packet.Alloc
	return a.New(1, 1, size, 0)
}

func TestFIFOOrder(t *testing.T) {
	q := New(0, 0)
	var a packet.Alloc
	for i := 0; i < 100; i++ {
		q.Push(a.New(packet.FlowID(i), 0, 100, 0))
	}
	for i := 0; i < 100; i++ {
		p := q.Pop()
		if p == nil || p.Flow != packet.FlowID(i) {
			t.Fatalf("pop %d returned wrong packet %+v", i, p)
		}
	}
	if q.Pop() != nil {
		t.Fatal("pop on empty queue returned a packet")
	}
}

func TestFIFOPacketBound(t *testing.T) {
	q := New(2, 0)
	if !q.TryPush(mk(100)) || !q.TryPush(mk(100)) {
		t.Fatal("pushes within bound failed")
	}
	if q.TryPush(mk(100)) {
		t.Fatal("push beyond packet bound succeeded")
	}
	if q.Drops != 1 {
		t.Fatalf("Drops = %d, want 1", q.Drops)
	}
	q.Pop()
	if !q.TryPush(mk(100)) {
		t.Fatal("push after pop failed")
	}
}

func TestFIFOByteBound(t *testing.T) {
	q := New(0, 250)
	if !q.TryPush(mk(100)) || !q.TryPush(mk(100)) {
		t.Fatal("pushes within byte bound failed")
	}
	if q.TryPush(mk(100)) {
		t.Fatal("push beyond byte bound succeeded")
	}
	if q.DroppedBytes != 100 {
		t.Fatalf("DroppedBytes = %d, want 100", q.DroppedBytes)
	}
	if q.Bytes() != 200 {
		t.Fatalf("Bytes() = %d, want 200", q.Bytes())
	}
}

func TestFIFOPeekDoesNotRemove(t *testing.T) {
	q := New(0, 0)
	p := mk(64)
	q.Push(p)
	if q.Peek() != p || q.Len() != 1 {
		t.Fatal("peek removed or missed the packet")
	}
	if q.Pop() != p {
		t.Fatal("pop after peek returned wrong packet")
	}
}

func TestFIFOWrapAround(t *testing.T) {
	q := New(0, 0)
	var a packet.Alloc
	// Force multiple grow + wrap cycles.
	next := packet.FlowID(0)
	expect := packet.FlowID(0)
	for round := 0; round < 10; round++ {
		for i := 0; i < 37; i++ {
			q.Push(a.New(next, 0, 64, 0))
			next++
		}
		for i := 0; i < 29; i++ {
			p := q.Pop()
			if p == nil || p.Flow != expect {
				t.Fatalf("round %d: wrong packet, got %v want flow %d", round, p, expect)
			}
			expect++
		}
	}
	for q.Len() > 0 {
		p := q.Pop()
		if p.Flow != expect {
			t.Fatalf("drain: wrong flow %d, want %d", p.Flow, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d packets, pushed %d", expect, next)
	}
}

// Property: for any sequence of pushes and pops, Len and Bytes equal the
// packets actually inside, and FIFO order is preserved.
func TestFIFOInvariants(t *testing.T) {
	check := func(ops []uint8) bool {
		q := New(0, 0)
		var a packet.Alloc
		var model []*packet.Packet
		for _, op := range ops {
			if op%3 == 0 && len(model) > 0 {
				got := q.Pop()
				want := model[0]
				model = model[1:]
				if got != want {
					return false
				}
			} else {
				p := a.New(0, 0, int(op)+1, 0)
				q.Push(p)
				model = append(model, p)
			}
			if q.Len() != len(model) {
				return false
			}
			var bytes int64
			for _, p := range model {
				bytes += int64(p.Size)
			}
			if q.Bytes() != bytes {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
