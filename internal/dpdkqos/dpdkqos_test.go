package dpdkqos

import (
	"testing"

	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
	"flowvalve/internal/trafficgen"
)

type dpdkRig struct {
	eng   *sim.Engine
	s     *Scheduler
	bytes map[int]int64
	drops int
}

func newDPDKRig(t *testing.T, cfg Config) *dpdkRig {
	t.Helper()
	r := &dpdkRig{eng: sim.New(), bytes: make(map[int]int64)}
	var err error
	r.s, err = New(r.eng, cfg,
		func(p *packet.Packet) int { return int(p.App) },
		Callbacks{
			OnDeliver: func(p *packet.Packet) { r.bytes[int(p.App)] += int64(p.Size) },
			OnDrop:    func(*packet.Packet) { r.drops++ },
		})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	cfg := Config{Pipes: []PipeConfig{{RateBps: 1e9}}}
	if _, err := New(nil, cfg, func(*packet.Packet) int { return 0 }, Callbacks{}); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := New(sim.New(), cfg, nil, Callbacks{}); err == nil {
		t.Fatal("nil classifier accepted")
	}
	if _, err := New(sim.New(), Config{}, func(*packet.Packet) int { return 0 }, Callbacks{}); err == nil {
		t.Fatal("no pipes accepted")
	}
}

// Pipe rates are enforced (rate conformance — the paper credits the DPDK
// scheduler with good conformance).
func TestPipeRateConformance(t *testing.T) {
	r := newDPDKRig(t, Config{
		LinkRateBps: 10e9,
		Cores:       4,
		Pipes:       []PipeConfig{{RateBps: 2e9}, {RateBps: 6e9}},
	})
	alloc := &packet.Alloc{}
	for app := packet.AppID(0); app < 2; app++ {
		if _, err := trafficgen.NewCBR(r.eng, alloc, packet.FlowID(app), app, 1500,
			8e9, 0, 200e6, r.s.Enqueue); err != nil {
			t.Fatal(err)
		}
	}
	r.eng.Run()
	rate0 := float64(r.bytes[0]) * 8 / 0.2
	rate1 := float64(r.bytes[1]) * 8 / 0.2
	if rate0 < 1.7e9 || rate0 > 2.3e9 {
		t.Fatalf("pipe0 = %.2fG, want ≈2G", rate0/1e9)
	}
	if rate1 < 5.2e9 || rate1 > 6.6e9 {
		t.Fatalf("pipe1 = %.2fG, want ≈6G", rate1/1e9)
	}
}

// Throughput is CPU-bound: one core ≈ freq/cycles packets per second.
func TestCPUBoundThroughput(t *testing.T) {
	r := newDPDKRig(t, Config{
		LinkRateBps: 100e9, // wire never binds
		Cores:       1,
		Pipes:       []PipeConfig{{RateBps: 100e9}},
	})
	alloc := &packet.Alloc{}
	if _, err := trafficgen.NewSaturator(r.eng, alloc, []packet.FlowID{0, 1, 2, 3}, 0, 64,
		4e9, 0, 50e6, r.s.Enqueue); err != nil {
		t.Fatal(err)
	}
	r.eng.Run()
	st := r.s.Stats()
	pps := float64(st.Delivered) / 0.05
	cfg := Config{}.Defaults()
	want := cfg.Host.FreqHz / float64(cfg.CyclesPerPkt)
	if pps < want*0.9 || pps > want*1.1 {
		t.Fatalf("delivered %.2fMpps, CPU model predicts %.2fMpps", pps/1e6, want/1e6)
	}
	if st.CPUDrops == 0 {
		t.Fatal("overload should drop at the CPU stage")
	}
}

// Adding cores scales throughput near-linearly (Fig 13's core column).
func TestCoreScaling(t *testing.T) {
	rates := make(map[int]float64)
	for _, cores := range []int{1, 2, 4} {
		r := newDPDKRig(t, Config{
			LinkRateBps: 100e9,
			Cores:       cores,
			Pipes:       []PipeConfig{{RateBps: 100e9}},
		})
		alloc := &packet.Alloc{}
		if _, err := trafficgen.NewSaturator(r.eng, alloc, []packet.FlowID{0, 1, 2, 3}, 0, 64,
			15e9, 0, 20e6, r.s.Enqueue); err != nil {
			t.Fatal(err)
		}
		r.eng.Run()
		rates[cores] = float64(r.s.Stats().Delivered) / 0.02
	}
	if rates[2] < rates[1]*1.8 || rates[4] < rates[1]*3.5 {
		t.Fatalf("scaling broken: %v", rates)
	}
}

func TestBadPipeIndexDrops(t *testing.T) {
	r := newDPDKRig(t, Config{Pipes: []PipeConfig{{RateBps: 1e9}}})
	var a packet.Alloc
	r.s.Enqueue(a.New(0, 5, 100, 0)) // app 5 → pipe 5: out of range
	r.eng.Run()
	if r.drops != 1 {
		t.Fatalf("drops = %d, want 1", r.drops)
	}
}

func TestBacklogDrains(t *testing.T) {
	r := newDPDKRig(t, Config{
		LinkRateBps: 1e9,
		Pipes:       []PipeConfig{{RateBps: 1e9}},
	})
	var a packet.Alloc
	for i := 0; i < 20; i++ {
		r.s.Enqueue(a.New(0, 0, 1000, 0))
	}
	r.eng.Run()
	if r.s.Backlog() != 0 {
		t.Fatalf("backlog = %d after drain", r.s.Backlog())
	}
	if got := r.s.Stats().Delivered; got != 20 {
		t.Fatalf("delivered %d, want 20", got)
	}
}
