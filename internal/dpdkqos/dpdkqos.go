// Package dpdkqos models the DPDK QoS Scheduler block (rte_sched): a
// hierarchical credit-based scheduler (subport → pipes → queues) running
// on dedicated host cores in poll mode.
//
// Two properties matter for the paper's comparisons and both are modelled
// explicitly:
//
//   - Good rate conformance: pipes are credit-gated against their
//     configured rates and the subport against the link, so enforced
//     shares are accurate (§II-A: "improves the overall throughput
//     meanwhile offering good rate conformance").
//   - CPU-bound throughput: every packet passes an enqueue+dequeue CPU
//     stage of ~1000 cycles on the assigned cores, with a mild
//     contention penalty as cores are added (the spinlock and cache-line
//     sharing costs the paper traces in §V-B). That stage, not the wire,
//     is the bottleneck for small packets — Fig 13's core-count column.
package dpdkqos

import (
	"fmt"

	"flowvalve/internal/dataplane"
	"flowvalve/internal/host"
	"flowvalve/internal/packet"
	"flowvalve/internal/pktq"
	"flowvalve/internal/sim"
)

// Classify maps a packet to a pipe index; negative means drop.
type Classify func(*packet.Packet) int

// Callbacks deliver results to the harness; the scheduler shares the
// dataplane's callback shape so harnesses build one set for any backend.
type Callbacks = dataplane.Callbacks

// PipeConfig is one pipe's shaping parameters.
type PipeConfig struct {
	// RateBps is the pipe token rate.
	RateBps float64
	// Weight is the WRR weight among pipes with available credits.
	Weight float64
}

// Config tunes the scheduler model.
type Config struct {
	// LinkRateBps is the subport/link rate.
	LinkRateBps float64
	// Pipes configures the pipe set.
	Pipes []PipeConfig
	// QueuePkts bounds each pipe queue.
	QueuePkts int
	// Cores is the number of host cores polled by the scheduler.
	Cores int
	// CyclesPerPkt is the combined enqueue+dequeue cost on one core
	// (calibrated: 2.3GHz/1020 ≈ 2.25Mpps per core, Fig 13's DPDK
	// column).
	CyclesPerPkt int64
	// ContentionBeta is the per-extra-core cost inflation.
	ContentionBeta float64
	// CPUBacklogNs bounds the poll-loop backlog before input drops.
	CPUBacklogNs int64
	// TBPeriodNs is the credit replenish period.
	TBPeriodNs int64
	// Host is the CPU model config (Cores/FreqHz).
	Host host.Config
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.LinkRateBps <= 0 {
		c.LinkRateBps = 40e9
	}
	if c.QueuePkts <= 0 {
		c.QueuePkts = 256
	}
	if c.Cores <= 0 {
		c.Cores = 1
	}
	if c.CyclesPerPkt <= 0 {
		c.CyclesPerPkt = 1020
	}
	if c.ContentionBeta <= 0 {
		c.ContentionBeta = 0.001
	}
	if c.CPUBacklogNs <= 0 {
		c.CPUBacklogNs = 1_000_000
	}
	if c.TBPeriodNs <= 0 {
		c.TBPeriodNs = 1_000_000
	}
	c.Host = c.Host.Defaults()
	return c
}

type pipeState struct {
	cfg     PipeConfig
	queue   *pktq.FIFO
	credits float64 // bytes
	lastNs  int64
	deficit float64 // WRR deficit
}

// Stats are cumulative counters.
type Stats struct {
	Enqueued  uint64
	Delivered uint64
	Dropped   uint64
	CPUDrops  uint64
}

// Scheduler is a DPDK QoS scheduler instance.
type Scheduler struct {
	eng      *sim.Engine
	cfg      Config
	classify Classify
	cb       Callbacks
	cpu      *host.CPU

	pipes      []*pipeState
	subCredits float64
	subLastNs  int64

	cpuFreeNs  int64 // poll-loop busy-until
	wireFreeNs int64
	draining   bool
	nextPipe   int

	// Stalls counts drain passes that found backlog but no credits.
	Stalls uint64

	stats Stats
	tel   *schedTel // attached telemetry (nil when off)
}

// New builds a scheduler with the given pipes.
func New(eng *sim.Engine, cfg Config, classify Classify, cb Callbacks) (*Scheduler, error) {
	if eng == nil || classify == nil {
		return nil, fmt.Errorf("dpdkqos: nil engine or classifier")
	}
	cfg = cfg.Defaults()
	if len(cfg.Pipes) == 0 {
		return nil, fmt.Errorf("dpdkqos: no pipes configured")
	}
	s := &Scheduler{
		eng:      eng,
		cfg:      cfg,
		classify: classify,
		cb:       cb,
		cpu:      host.New(cfg.Host),
	}
	now := eng.Now()
	s.subLastNs = now
	s.subCredits = cfg.LinkRateBps / 8 * float64(cfg.TBPeriodNs) / 1e9
	for _, pc := range cfg.Pipes {
		if pc.Weight <= 0 {
			pc.Weight = 1
		}
		s.pipes = append(s.pipes, &pipeState{
			cfg:     pc,
			queue:   pktq.New(cfg.QueuePkts, 0),
			credits: pc.RateBps / 8 * float64(cfg.TBPeriodNs) / 1e9,
			lastNs:  now,
		})
	}
	return s, nil
}

// Stats returns cumulative counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// CPU returns the host CPU accountant.
func (s *Scheduler) CPU() *host.CPU { return s.cpu }

// perPktNs is the poll-loop service time per packet across the assigned
// cores, including the contention penalty.
func (s *Scheduler) perPktNs() int64 {
	eff := float64(s.cfg.CyclesPerPkt) * (1 + s.cfg.ContentionBeta*float64(s.cfg.Cores-1))
	return int64(eff / (float64(s.cfg.Cores) * s.cfg.Host.FreqHz) * 1e9)
}

// Enqueue accepts a packet at the current time. Packets are first gated
// by the poll-loop CPU stage; sustained input beyond the cores' capacity
// is dropped at the software ring.
func (s *Scheduler) Enqueue(p *packet.Packet) {
	now := s.eng.Now()
	if s.cpuFreeNs < now {
		s.cpuFreeNs = now
	}
	if s.cpuFreeNs-now > s.cfg.CPUBacklogNs {
		s.stats.CPUDrops++
		if s.tel != nil {
			s.tel.droppedCPU.Add(1)
		}
		s.dropSilent(p)
		return
	}
	cycles := float64(s.cfg.CyclesPerPkt) * (1 + s.cfg.ContentionBeta*float64(s.cfg.Cores-1))
	s.cpuFreeNs += s.perPktNs()
	s.cpu.Charge(cycles)
	if s.tel != nil {
		s.tel.hostCycles.Add(int64(cycles))
	}

	pipeIdx := s.classify(p)
	if pipeIdx < 0 || pipeIdx >= len(s.pipes) {
		s.drop(p)
		return
	}
	// The packet becomes schedulable once the poll loop has processed
	// it.
	ready := s.cpuFreeNs
	s.eng.At(ready, func() {
		pipe := s.pipes[pipeIdx]
		if !pipe.queue.TryPush(p) {
			s.drop(p)
			return
		}
		s.stats.Enqueued++
		if s.tel != nil {
			s.tel.enqueued.Add(1)
			s.tel.backlog.Add(1)
		}
		if !s.draining {
			s.draining = true
			s.eng.After(0, s.drain)
		}
	})
}

func (s *Scheduler) drain() {
	now := s.eng.Now()
	if now < s.wireFreeNs {
		s.eng.At(s.wireFreeNs, s.drain)
		return
	}
	s.replenish(now)
	pipe := s.selectPipe()
	if pipe == nil {
		if s.anyBacklog() {
			s.Stalls++
			// Poll-mode scheduler: retry as soon as some backlogged
			// pipe accrues enough credits (the poll loop spins; it
			// does not sleep a whole TB period).
			s.eng.After(s.creditWaitNs(), s.drain)
			return
		}
		s.draining = false
		return
	}
	p := pipe.queue.Pop()
	if s.tel != nil {
		s.tel.backlog.Add(-1)
	}
	size := float64(p.Size)
	pipe.credits -= size
	s.subCredits -= size

	txNs := int64(float64(p.WireBytes()*8) / s.cfg.LinkRateBps * 1e9)
	s.wireFreeNs = now + txNs
	done := s.wireFreeNs
	s.eng.At(done, func() {
		p.EgressAt = done
		s.stats.Delivered++
		if s.tel != nil {
			s.tel.delivered.Add(1)
			s.tel.deliveredBytes.Add(int64(p.Size))
		}
		if s.cb.OnDeliver != nil {
			s.cb.OnDeliver(p)
		}
		s.drain()
	})
}

// creditWaitNs returns how long until the first backlogged pipe can
// afford its head packet, bounded to [1µs, TBPeriod].
func (s *Scheduler) creditWaitNs() int64 {
	wait := s.cfg.TBPeriodNs
	for _, pipe := range s.pipes {
		head := pipe.queue.Peek()
		if head == nil || pipe.cfg.RateBps <= 0 {
			continue
		}
		need := float64(head.Size) - pipe.credits
		if sub := float64(head.Size) - s.subCredits; sub > need {
			need = sub
		}
		if need <= 0 {
			// Blocked on WRR deficit only; one more pass fixes it.
			return 1_000
		}
		w := int64(need * 8 / pipe.cfg.RateBps * 1e9)
		if w < wait {
			wait = w
		}
	}
	if wait < 1_000 {
		wait = 1_000
	}
	return wait
}

func (s *Scheduler) anyBacklog() bool {
	for _, pipe := range s.pipes {
		if !pipe.queue.Empty() {
			return true
		}
	}
	return false
}

func (s *Scheduler) replenish(now int64) {
	if dt := now - s.subLastNs; dt > 0 {
		s.subLastNs = now
		s.subCredits += s.cfg.LinkRateBps / 8 * float64(dt) / 1e9
		if maxC := s.cfg.LinkRateBps / 8 * float64(s.cfg.TBPeriodNs) / 1e9; s.subCredits > maxC {
			s.subCredits = maxC
		}
	}
	for _, pipe := range s.pipes {
		dt := now - pipe.lastNs
		if dt <= 0 {
			continue
		}
		pipe.lastNs = now
		pipe.credits += pipe.cfg.RateBps / 8 * float64(dt) / 1e9
		if maxC := pipe.cfg.RateBps / 8 * float64(s.cfg.TBPeriodNs) / 1e9; pipe.credits > maxC {
			pipe.credits = maxC
		}
	}
}

// selectPipe picks the next pipe WRR among those with queue backlog and
// sufficient pipe + subport credits.
func (s *Scheduler) selectPipe() *pipeState {
	n := len(s.pipes)
	for i := 0; i < n; i++ {
		idx := (s.nextPipe + i) % n
		pipe := s.pipes[idx]
		if pipe.queue.Empty() {
			continue
		}
		size := float64(pipe.queue.Peek().Size)
		if pipe.credits < size || s.subCredits < size {
			continue
		}
		if pipe.deficit < size {
			pipe.deficit += pipe.cfg.Weight * packet.MaxFrame
			if pipe.deficit < size {
				continue
			}
		}
		pipe.deficit -= size
		s.nextPipe = (idx + 1) % n
		return pipe
	}
	return nil
}

// drop records a queue-stage drop (overflow or classification failure).
func (s *Scheduler) drop(p *packet.Packet) {
	if s.tel != nil {
		s.tel.droppedQueue.Add(1)
	}
	s.dropSilent(p)
}

// dropSilent accounts a drop whose reason the caller already recorded.
func (s *Scheduler) dropSilent(p *packet.Packet) {
	s.stats.Dropped++
	if s.cb.OnDrop != nil {
		s.cb.OnDrop(p)
	}
}

// Backlog returns total queued packets across pipes.
func (s *Scheduler) Backlog() int {
	var n int
	for _, pipe := range s.pipes {
		n += pipe.queue.Len()
	}
	return n
}

// Compile-time capability checks: the DPDK baseline is driven through
// the same dataplane.Qdisc interface as the other backends.
var (
	_ dataplane.Qdisc          = (*Scheduler)(nil)
	_ dataplane.Backlogger     = (*Scheduler)(nil)
	_ dataplane.HostAccountant = (*Scheduler)(nil)
	_ dataplane.TelemetrySink  = (*Scheduler)(nil)
)

// QdiscStats implements dataplane.Qdisc. Dropped already folds in the
// poll-loop CPU drops (Stats.CPUDrops breaks them out).
func (s *Scheduler) QdiscStats() dataplane.Stats {
	return dataplane.Stats{
		Enqueued:  s.stats.Enqueued,
		Delivered: s.stats.Delivered,
		Dropped:   s.stats.Dropped,
	}
}

// HostCores implements dataplane.HostAccountant: poll-mode cores burned
// by the scheduler over the run.
func (s *Scheduler) HostCores(durationNs int64) float64 {
	return s.cpu.CoresUsed(durationNs)
}
