package dpdkqos

import "flowvalve/internal/telemetry"

// schedTel holds the scheduler's attached metric handles.
type schedTel struct {
	enqueued       *telemetry.Counter
	delivered      *telemetry.Counter
	deliveredBytes *telemetry.Counter
	droppedQueue   *telemetry.Counter
	droppedCPU     *telemetry.Counter
	hostCycles     *telemetry.Counter
	backlog        *telemetry.Gauge
}

// AttachTelemetry wires the DPDK QoS baseline into a metrics registry
// using the same family names as the NIC model and the HTB baseline,
// labelled {scheduler="dpdk"}. Drops split by reason: "queue" for pipe
// queue overflow or classification failure, "cpu" for poll-loop backlog
// exceeding the software-ring budget.
func (s *Scheduler) AttachTelemetry(reg *telemetry.Registry) {
	if reg == nil {
		s.tel = nil
		return
	}
	sched := telemetry.Label{Key: "scheduler", Value: "dpdk"}
	drop := func(reason string) *telemetry.Counter {
		return reg.Counter("fv_dropped_packets_total",
			"Packets dropped, by scheduler and reason.",
			sched, telemetry.Label{Key: "reason", Value: reason})
	}
	s.tel = &schedTel{
		enqueued: reg.Counter("fv_enqueued_packets_total",
			"Packets accepted into a class queue.", sched),
		delivered: reg.Counter("fv_delivered_packets_total",
			"Packets that finished transmitting on the wire.", sched),
		deliveredBytes: reg.Counter("fv_delivered_bytes_total",
			"Frame bytes that finished transmitting on the wire.", sched),
		droppedQueue: drop("queue"),
		droppedCPU:   drop("cpu"),
		hostCycles: reg.Counter("fv_host_cycles_total",
			"Host CPU cycles burned in the poll-mode scheduler stage.", sched),
		backlog: reg.Gauge("fv_backlog_packets",
			"Packets waiting in scheduler queues.", sched),
	}
}
