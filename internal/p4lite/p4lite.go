// Package p4lite is a small match-action pipeline in the spirit of the
// paper's P4 backend: parsed header fields plus per-packet metadata form
// a key vector, and ternary match-action tables classify packets to
// traffic classes (or drop them). FlowValve's labeling function compiles
// tc-style filters into these tables; the exact-match flow cache sits in
// front of the pipeline exactly as on the Netronome, so the table walk
// only runs on cache misses.
package p4lite

import (
	"fmt"
	"strings"
	"sync/atomic"

	"flowvalve/internal/headers"
)

// Field identifies one matchable key component: packet metadata (the
// virtual function and transport flow id) or parsed header fields.
type Field int

const (
	// FieldVF is the ingress virtual function (SR-IOV port) metadata.
	FieldVF Field = iota + 1
	// FieldFlowID is the transport flow metadata (simulation-level id).
	FieldFlowID
	// FieldSrcIP .. FieldProto are parsed from the header stack.
	FieldSrcIP
	FieldDstIP
	FieldSrcPort
	FieldDstPort
	FieldProto

	numFields = int(FieldProto)
)

// String names the field in table dumps.
func (f Field) String() string {
	switch f {
	case FieldVF:
		return "vf"
	case FieldFlowID:
		return "flow"
	case FieldSrcIP:
		return "ip.src"
	case FieldDstIP:
		return "ip.dst"
	case FieldSrcPort:
		return "l4.sport"
	case FieldDstPort:
		return "l4.dport"
	case FieldProto:
		return "ip.proto"
	default:
		return "invalid"
	}
}

// Key is the extracted match vector for one packet.
type Key struct {
	VF     uint32
	FlowID uint32
	Tuple  headers.FiveTuple
}

// Get returns the value of one field.
func (k Key) Get(f Field) uint64 {
	switch f {
	case FieldVF:
		return uint64(k.VF)
	case FieldFlowID:
		return uint64(k.FlowID)
	case FieldSrcIP:
		return uint64(k.Tuple.SrcIP)
	case FieldDstIP:
		return uint64(k.Tuple.DstIP)
	case FieldSrcPort:
		return uint64(k.Tuple.SrcPort)
	case FieldDstPort:
		return uint64(k.Tuple.DstPort)
	case FieldProto:
		return uint64(k.Tuple.Proto)
	default:
		return 0
	}
}

// Match is one ternary field condition: key&Mask == Value&Mask.
type Match struct {
	Field Field
	Value uint64
	Mask  uint64
}

// ActionKind is what a matching entry does.
type ActionKind int

const (
	// ActSetClass labels the packet with a traffic class.
	ActSetClass ActionKind = iota + 1
	// ActDrop discards the packet at the table.
	ActDrop
)

// Action is the entry's action.
type Action struct {
	Kind  ActionKind
	Class string
}

// Entry is one table row. Entries are evaluated in insertion order
// (tc filter preference semantics); the first full match wins.
type Entry struct {
	Matches []Match
	Action  Action
}

func (e Entry) matches(k Key) bool {
	for _, m := range e.Matches {
		if k.Get(m.Field)&m.Mask != m.Value&m.Mask {
			return false
		}
	}
	return true
}

// Table is an ordered ternary match-action table.
type Table struct {
	name    string
	entries []Entry

	// Lookups and Hits count table activity. They are atomic because
	// classifier miss paths walk the pipeline concurrently (one walk per
	// cache shard).
	Lookups atomic.Uint64
	Hits    atomic.Uint64
}

// NewTable returns an empty table.
func NewTable(name string) *Table {
	return &Table{name: name}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Len returns the number of entries.
func (t *Table) Len() int { return len(t.entries) }

// Add appends an entry (lowest preference last). Entries with no matches
// are valid: they match everything (a default action row).
func (t *Table) Add(e Entry) error {
	if e.Action.Kind == 0 {
		return fmt.Errorf("p4lite: entry without action in table %s", t.name)
	}
	if e.Action.Kind == ActSetClass && e.Action.Class == "" {
		return fmt.Errorf("p4lite: set-class entry without class in table %s", t.name)
	}
	for _, m := range e.Matches {
		if m.Field < FieldVF || int(m.Field) > numFields {
			return fmt.Errorf("p4lite: bad field %d in table %s", m.Field, t.name)
		}
	}
	t.entries = append(t.entries, e)
	return nil
}

// Lookup returns the first matching entry's action.
func (t *Table) Lookup(k Key) (Action, bool) {
	t.Lookups.Add(1)
	for _, e := range t.entries {
		if e.matches(k) {
			t.Hits.Add(1)
			return e.Action, true
		}
	}
	return Action{}, false
}

// Dump renders the table for `fv show`-style diagnostics.
func (t *Table) Dump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "table %s (%d entries)\n", t.name, len(t.entries))
	for i, e := range t.entries {
		fmt.Fprintf(&sb, "  %3d:", i)
		if len(e.Matches) == 0 {
			sb.WriteString(" *")
		}
		for _, m := range e.Matches {
			fmt.Fprintf(&sb, " %s=%#x/%#x", m.Field, m.Value, m.Mask)
		}
		switch e.Action.Kind {
		case ActSetClass:
			fmt.Fprintf(&sb, " -> class %s", e.Action.Class)
		case ActDrop:
			sb.WriteString(" -> drop")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Result is the pipeline outcome for one packet.
type Result struct {
	// Class is the assigned traffic class ("" if nothing matched).
	Class string
	// Drop is true when a table action dropped the packet.
	Drop bool
	// TablesVisited is the number of table lookups executed — the NIC
	// model charges per-table cycles.
	TablesVisited int
}

// Pipeline is an ordered list of match-action tables. Later tables can
// override the class set by earlier ones (P4 control-flow style); a drop
// action short-circuits.
type Pipeline struct {
	tables []*Table
}

// NewPipeline builds a pipeline over the given tables.
func NewPipeline(tables ...*Table) *Pipeline {
	return &Pipeline{tables: tables}
}

// Tables returns the pipeline's tables in order.
func (p *Pipeline) Tables() []*Table { return p.tables }

// Classify runs the key through every table.
func (p *Pipeline) Classify(k Key) Result {
	var res Result
	for _, t := range p.tables {
		res.TablesVisited++
		act, ok := t.Lookup(k)
		if !ok {
			continue
		}
		switch act.Kind {
		case ActDrop:
			res.Drop = true
			return res
		case ActSetClass:
			res.Class = act.Class
		}
	}
	return res
}

// ParseFrame extracts the header-derived part of a key from raw frame
// bytes — the parser stage in front of the tables.
func ParseFrame(frame []byte, vf, flowID uint32) (Key, error) {
	parsed, err := headers.Parse(frame)
	if err != nil {
		return Key{}, err
	}
	return Key{VF: vf, FlowID: flowID, Tuple: parsed.Tuple}, nil
}
