package p4lite

import (
	"strings"
	"testing"
	"testing/quick"

	"flowvalve/internal/headers"
)

func key(vf uint32, dport uint16) Key {
	return Key{
		VF: vf,
		Tuple: headers.FiveTuple{
			SrcIP: 0x0a000001, DstIP: 0x0a000002,
			SrcPort: 40000, DstPort: dport, Proto: headers.ProtoTCP,
		},
	}
}

func TestExactMatchEntry(t *testing.T) {
	tbl := NewTable("classify")
	err := tbl.Add(Entry{
		Matches: []Match{{Field: FieldDstPort, Value: 5201, Mask: 0xffff}},
		Action:  Action{Kind: ActSetClass, Class: "kvs"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if act, ok := tbl.Lookup(key(0, 5201)); !ok || act.Class != "kvs" {
		t.Fatalf("lookup = %v, %v", act, ok)
	}
	if _, ok := tbl.Lookup(key(0, 80)); ok {
		t.Fatal("non-matching port matched")
	}
	if tbl.Lookups.Load() != 2 || tbl.Hits.Load() != 1 {
		t.Fatalf("stats: lookups=%d hits=%d", tbl.Lookups.Load(), tbl.Hits.Load())
	}
}

func TestTernaryAndWildcard(t *testing.T) {
	tbl := NewTable("t")
	// 10.0.0.0/24 via mask.
	if err := tbl.Add(Entry{
		Matches: []Match{{Field: FieldSrcIP, Value: 0x0a000000, Mask: 0xffffff00}},
		Action:  Action{Kind: ActSetClass, Class: "subnet"},
	}); err != nil {
		t.Fatal(err)
	}
	// Catch-all.
	if err := tbl.Add(Entry{Action: Action{Kind: ActSetClass, Class: "default"}}); err != nil {
		t.Fatal(err)
	}
	if act, _ := tbl.Lookup(key(0, 80)); act.Class != "subnet" {
		t.Fatalf("subnet match failed: %v", act)
	}
	k := key(0, 80)
	k.Tuple.SrcIP = 0x0b000001
	if act, _ := tbl.Lookup(k); act.Class != "default" {
		t.Fatalf("catch-all failed: %v", act)
	}
}

func TestFirstMatchWins(t *testing.T) {
	tbl := NewTable("t")
	tbl.Add(Entry{
		Matches: []Match{{Field: FieldVF, Value: 1, Mask: ^uint64(0)}},
		Action:  Action{Kind: ActSetClass, Class: "first"},
	})
	tbl.Add(Entry{
		Matches: []Match{{Field: FieldVF, Value: 1, Mask: ^uint64(0)}},
		Action:  Action{Kind: ActSetClass, Class: "second"},
	})
	if act, _ := tbl.Lookup(key(1, 80)); act.Class != "first" {
		t.Fatalf("order violated: %v", act)
	}
}

func TestAddValidation(t *testing.T) {
	tbl := NewTable("t")
	if err := tbl.Add(Entry{}); err == nil {
		t.Fatal("entry without action accepted")
	}
	if err := tbl.Add(Entry{Action: Action{Kind: ActSetClass}}); err == nil {
		t.Fatal("set-class without class accepted")
	}
	if err := tbl.Add(Entry{
		Matches: []Match{{Field: Field(99)}},
		Action:  Action{Kind: ActDrop},
	}); err == nil {
		t.Fatal("bad field accepted")
	}
}

func TestPipelineOverrideAndDrop(t *testing.T) {
	t1 := NewTable("coarse")
	t1.Add(Entry{Action: Action{Kind: ActSetClass, Class: "bulk"}})
	t2 := NewTable("fine")
	t2.Add(Entry{
		Matches: []Match{{Field: FieldDstPort, Value: 5201, Mask: 0xffff}},
		Action:  Action{Kind: ActSetClass, Class: "kvs"},
	})
	t2.Add(Entry{
		Matches: []Match{{Field: FieldDstPort, Value: 23, Mask: 0xffff}},
		Action:  Action{Kind: ActDrop},
	})
	p := NewPipeline(t1, t2)

	res := p.Classify(key(0, 5201))
	if res.Class != "kvs" || res.Drop || res.TablesVisited != 2 {
		t.Fatalf("override result: %+v", res)
	}
	res = p.Classify(key(0, 80))
	if res.Class != "bulk" {
		t.Fatalf("coarse class lost: %+v", res)
	}
	res = p.Classify(key(0, 23))
	if !res.Drop {
		t.Fatalf("drop action ignored: %+v", res)
	}
	if len(p.Tables()) != 2 {
		t.Fatal("Tables() wrong")
	}
}

func TestParseFrameFeedsKey(t *testing.T) {
	tp := headers.FiveTuple{
		SrcIP: 0x0a000001, DstIP: 0x0a000002,
		SrcPort: 40000, DstPort: 5201, Proto: headers.ProtoTCP,
	}
	buf := make([]byte, headers.MaxStackLen)
	n, err := headers.Build(buf, tp, 1500)
	if err != nil {
		t.Fatal(err)
	}
	k, err := ParseFrame(buf[:n], 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if k.VF != 3 || k.FlowID != 7 || k.Tuple != tp {
		t.Fatalf("key = %+v", k)
	}
	if _, err := ParseFrame(buf[:8], 0, 0); err == nil {
		t.Fatal("garbage frame parsed")
	}
}

func TestDumpAndFieldNames(t *testing.T) {
	tbl := NewTable("demo")
	tbl.Add(Entry{
		Matches: []Match{{Field: FieldSrcPort, Value: 80, Mask: 0xffff}},
		Action:  Action{Kind: ActSetClass, Class: "web"},
	})
	tbl.Add(Entry{Action: Action{Kind: ActDrop}})
	out := tbl.Dump()
	for _, want := range []string{"table demo", "l4.sport", "class web", "drop", "*"} {
		if !strings.Contains(out, want) {
			t.Errorf("Dump missing %q:\n%s", want, out)
		}
	}
	for f := FieldVF; int(f) <= numFields; f++ {
		if f.String() == "invalid" {
			t.Errorf("field %d has no name", f)
		}
	}
	if Field(0).String() != "invalid" {
		t.Error("invalid field named")
	}
}

// Property: a single-field exact entry matches exactly the keys whose
// field equals the value.
func TestExactEntryProperty(t *testing.T) {
	check := func(val, probe uint16) bool {
		tbl := NewTable("p")
		tbl.Add(Entry{
			Matches: []Match{{Field: FieldDstPort, Value: uint64(val), Mask: 0xffff}},
			Action:  Action{Kind: ActSetClass, Class: "x"},
		})
		_, ok := tbl.Lookup(key(0, probe))
		return ok == (val == probe)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}
