// Package trafficgen provides open-loop packet sources for the stress
// experiments: constant-bit-rate streams, fixed-size full-speed injectors
// (the Fig 13 packet-size sweep), and on/off staged sources. Unlike the
// TCP model these sources do not react to drops — they emulate the
// paper's "inject fixed-length packets at full speed" methodology.
package trafficgen

import (
	"fmt"

	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
)

// CBR emits fixed-size packets at a constant bit rate between start and
// stop times.
type CBR struct {
	eng  *sim.Engine
	pkts *packet.Alloc
	send func(*packet.Packet)

	flow packet.FlowID
	app  packet.AppID
	size int

	intervalNs int64
	stopNs     int64
	running    bool

	// Sent counts emitted packets.
	Sent uint64
}

// NewCBR builds a source sending `size`-byte packets at rateBps
// (wire-frame bits, including the frame itself but not preamble/IFG) from
// startNs to stopNs. A stopNs of 0 means "never stop".
func NewCBR(eng *sim.Engine, pkts *packet.Alloc, flow packet.FlowID, app packet.AppID, size int, rateBps float64, startNs, stopNs int64, send func(*packet.Packet)) (*CBR, error) {
	if eng == nil || pkts == nil || send == nil {
		return nil, fmt.Errorf("trafficgen: nil engine, allocator, or send function")
	}
	if size <= 0 || rateBps <= 0 {
		return nil, fmt.Errorf("trafficgen: non-positive size or rate")
	}
	g := &CBR{
		eng:        eng,
		pkts:       pkts,
		send:       send,
		flow:       flow,
		app:        app,
		size:       size,
		intervalNs: int64(float64(size*8) / rateBps * 1e9),
		stopNs:     stopNs,
	}
	if g.intervalNs < 1 {
		g.intervalNs = 1
	}
	eng.At(startNs, func() {
		g.running = true
		g.emit()
	})
	return g, nil
}

func (g *CBR) emit() {
	if !g.running {
		return
	}
	now := g.eng.Now()
	if g.stopNs > 0 && now >= g.stopNs {
		g.running = false
		return
	}
	p := g.pkts.New(g.flow, g.app, g.size, now)
	g.Sent++
	g.send(p)
	g.eng.After(g.intervalNs, g.emit)
}

// Stop halts the source at the given virtual time.
func (g *CBR) Stop(atNs int64) {
	g.eng.At(atNs, func() { g.running = false })
}

// Saturator emits fixed-size packets as fast as the target accepts them,
// gated by a credit callback so injection tracks the device's drain rate
// instead of flooding the event queue. It models a DPDK pktgen pushing
// line rate into the NIC.
type Saturator struct {
	eng  *sim.Engine
	pkts *packet.Alloc
	send func(*packet.Packet)

	flows []packet.FlowID
	app   packet.AppID
	size  int
	next  int

	intervalNs int64
	stopNs     int64

	// Sent counts emitted packets.
	Sent uint64
}

// NewSaturator builds a full-speed source spraying `size`-byte packets
// round-robin over the given flow IDs at offeredBps (set slightly above
// the device capacity under test), from startNs to stopNs.
func NewSaturator(eng *sim.Engine, pkts *packet.Alloc, flows []packet.FlowID, app packet.AppID, size int, offeredBps float64, startNs, stopNs int64, send func(*packet.Packet)) (*Saturator, error) {
	if eng == nil || pkts == nil || send == nil {
		return nil, fmt.Errorf("trafficgen: nil engine, allocator, or send function")
	}
	if len(flows) == 0 {
		return nil, fmt.Errorf("trafficgen: saturator needs at least one flow")
	}
	if size <= 0 || offeredBps <= 0 {
		return nil, fmt.Errorf("trafficgen: non-positive size or rate")
	}
	s := &Saturator{
		eng:        eng,
		pkts:       pkts,
		send:       send,
		flows:      flows,
		app:        app,
		size:       size,
		intervalNs: int64(float64(size*8) / offeredBps * 1e9),
		stopNs:     stopNs,
	}
	if s.intervalNs < 1 {
		s.intervalNs = 1
	}
	eng.At(startNs, s.emit)
	return s, nil
}

func (s *Saturator) emit() {
	now := s.eng.Now()
	if s.stopNs > 0 && now >= s.stopNs {
		return
	}
	p := s.pkts.New(s.flows[s.next], s.app, s.size, now)
	s.next = (s.next + 1) % len(s.flows)
	s.Sent++
	s.send(p)
	s.eng.After(s.intervalNs, s.emit)
}

// OnOff emits fixed-size packets at peakBps during exponentially
// distributed ON periods separated by exponentially distributed OFF
// periods — the classic bursty source. The long-run average rate is
// peakBps · meanOn/(meanOn+meanOff).
type OnOff struct {
	eng  *sim.Engine
	pkts *packet.Alloc
	send func(*packet.Packet)
	rng  *sim.RNG

	flow packet.FlowID
	app  packet.AppID
	size int

	intervalNs float64
	meanOnNs   float64
	meanOffNs  float64
	stopNs     int64

	on      bool
	phaseNs int64 // current phase ends at this instant

	// Sent counts emitted packets.
	Sent uint64
}

// NewOnOff builds a bursty source. seed drives the phase lengths
// deterministically.
func NewOnOff(eng *sim.Engine, pkts *packet.Alloc, flow packet.FlowID, app packet.AppID,
	size int, peakBps float64, meanOnNs, meanOffNs float64,
	startNs, stopNs int64, seed uint64, send func(*packet.Packet)) (*OnOff, error) {
	if eng == nil || pkts == nil || send == nil {
		return nil, fmt.Errorf("trafficgen: nil engine, allocator, or send function")
	}
	if size <= 0 || peakBps <= 0 || meanOnNs <= 0 || meanOffNs < 0 {
		return nil, fmt.Errorf("trafficgen: non-positive on/off parameters")
	}
	g := &OnOff{
		eng:        eng,
		pkts:       pkts,
		send:       send,
		rng:        sim.NewRNG(seed),
		flow:       flow,
		app:        app,
		size:       size,
		intervalNs: float64(size*8) / peakBps * 1e9,
		meanOnNs:   meanOnNs,
		meanOffNs:  meanOffNs,
		stopNs:     stopNs,
	}
	eng.At(startNs, g.togglePhase)
	return g, nil
}

func (g *OnOff) togglePhase() {
	now := g.eng.Now()
	if g.stopNs > 0 && now >= g.stopNs {
		return
	}
	g.on = !g.on
	var phase float64
	if g.on {
		phase = g.rng.Exp(g.meanOnNs)
	} else {
		phase = g.rng.Exp(g.meanOffNs)
	}
	if phase < 1 {
		phase = 1
	}
	g.phaseNs = now + int64(phase)
	if g.on {
		g.emit()
	}
	g.eng.At(g.phaseNs, g.togglePhase)
}

func (g *OnOff) emit() {
	now := g.eng.Now()
	if !g.on || now >= g.phaseNs || (g.stopNs > 0 && now >= g.stopNs) {
		return
	}
	g.Sent++
	g.send(g.pkts.New(g.flow, g.app, g.size, now))
	gap := int64(g.intervalNs)
	if gap < 1 {
		gap = 1
	}
	g.eng.After(gap, g.emit)
}

// Churn emits a stream of short-lived "mouse" flows: new flows arrive as
// a Poisson process, each sends a geometrically-flavoured handful of
// fixed-size packets at a fixed per-packet gap, and flow IDs increment
// from a base so every arrival is a brand-new connection. This is the
// connection-churn load that stresses an offload control plane's
// rule-insertion budget — lots of new flows, none worth offloading.
type Churn struct {
	eng  *sim.Engine
	pkts *packet.Alloc
	send func(*packet.Packet)
	rng  *sim.RNG

	app  packet.AppID
	size int

	nextFlow   packet.FlowID
	interArrNs float64
	meanPkts   float64
	gapNs      int64
	stopNs     int64

	// Sent counts emitted packets; Flows started flows.
	Sent  uint64
	Flows uint64
}

// NewChurn builds a churn source on app: flowsPerSec new flows (Poisson
// arrivals), each sending on average meanPkts `size`-byte packets spaced
// gapNs apart, with flow IDs counting up from baseFlow. seed drives the
// arrival process deterministically.
func NewChurn(eng *sim.Engine, pkts *packet.Alloc, app packet.AppID, size int,
	flowsPerSec, meanPkts float64, gapNs int64, baseFlow packet.FlowID,
	startNs, stopNs int64, seed uint64, send func(*packet.Packet)) (*Churn, error) {
	if eng == nil || pkts == nil || send == nil {
		return nil, fmt.Errorf("trafficgen: nil engine, allocator, or send function")
	}
	if size <= 0 || flowsPerSec <= 0 || meanPkts < 1 {
		return nil, fmt.Errorf("trafficgen: non-positive churn parameters")
	}
	if gapNs < 1 {
		gapNs = 1
	}
	g := &Churn{
		eng:        eng,
		pkts:       pkts,
		send:       send,
		rng:        sim.NewRNG(seed),
		app:        app,
		size:       size,
		nextFlow:   baseFlow,
		interArrNs: 1e9 / flowsPerSec,
		meanPkts:   meanPkts,
		gapNs:      gapNs,
		stopNs:     stopNs,
	}
	eng.At(startNs, g.arrive)
	return g, nil
}

// arrive starts one new flow and schedules the next arrival.
func (g *Churn) arrive() {
	now := g.eng.Now()
	if g.stopNs > 0 && now >= g.stopNs {
		return
	}
	flow := g.nextFlow
	g.nextFlow++
	g.Flows++
	// Packet count: 1 + an exponential tail around the mean, the
	// heavy-ish short-flow distribution of connection setups.
	n := 1
	if g.meanPkts > 1 {
		n += int(g.rng.Exp(g.meanPkts - 1))
	}
	g.emitFlow(flow, n)
	next := g.rng.Exp(g.interArrNs)
	if next < 1 {
		next = 1
	}
	g.eng.After(int64(next), g.arrive)
}

// emitFlow sends one packet of flow and re-arms for the remainder.
func (g *Churn) emitFlow(flow packet.FlowID, remaining int) {
	now := g.eng.Now()
	if remaining <= 0 || (g.stopNs > 0 && now >= g.stopNs) {
		return
	}
	g.Sent++
	g.send(g.pkts.New(flow, g.app, g.size, now))
	if remaining > 1 {
		g.eng.After(g.gapNs, func() { g.emitFlow(flow, remaining-1) })
	}
}
