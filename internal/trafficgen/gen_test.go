package trafficgen

import (
	"testing"

	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
)

func TestCBRRateAndWindow(t *testing.T) {
	eng := sim.New()
	alloc := &packet.Alloc{}
	var count int
	var bytes int64
	g, err := NewCBR(eng, alloc, 1, 2, 1000, 80e6, 100e6, 600e6, func(p *packet.Packet) {
		count++
		bytes += int64(p.Size)
		if p.Flow != 1 || p.App != 2 || p.Size != 1000 {
			t.Fatal("packet fields wrong")
		}
		if now := eng.Now(); now < 100e6 || now >= 600e6 {
			t.Fatalf("packet outside window at %dns", now)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// 80Mbit/s of 1000B packets over 0.5s = 10kpps × 0.5 = 5000 pkts.
	if count < 4900 || count > 5100 {
		t.Fatalf("sent %d packets, want ≈5000", count)
	}
	if g.Sent != uint64(count) {
		t.Fatalf("Sent counter %d != callback count %d", g.Sent, count)
	}
}

func TestCBRStop(t *testing.T) {
	eng := sim.New()
	alloc := &packet.Alloc{}
	var count int
	g, err := NewCBR(eng, alloc, 1, 1, 100, 8e6, 0, 0, func(*packet.Packet) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	g.Stop(10e6)
	eng.RunUntil(50e6)
	// 10kpps × 10ms = 100 packets.
	if count < 95 || count > 105 {
		t.Fatalf("sent %d packets before Stop, want ≈100", count)
	}
}

func TestCBRValidation(t *testing.T) {
	eng := sim.New()
	alloc := &packet.Alloc{}
	sink := func(*packet.Packet) {}
	if _, err := NewCBR(nil, alloc, 0, 0, 100, 1e6, 0, 0, sink); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewCBR(eng, alloc, 0, 0, 0, 1e6, 0, 0, sink); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := NewCBR(eng, alloc, 0, 0, 100, 0, 0, 0, sink); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := NewCBR(eng, alloc, 0, 0, 100, 1e6, 0, 0, nil); err == nil {
		t.Fatal("nil send accepted")
	}
}

func TestSaturatorRoundRobinFlows(t *testing.T) {
	eng := sim.New()
	alloc := &packet.Alloc{}
	flows := []packet.FlowID{10, 11, 12}
	perFlow := make(map[packet.FlowID]int)
	s, err := NewSaturator(eng, alloc, flows, 4, 64, 512e6, 0, 1e6, func(p *packet.Packet) {
		perFlow[p.Flow]++
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if s.Sent == 0 {
		t.Fatal("saturator sent nothing")
	}
	// Round robin: flow counts within one of each other.
	var minC, maxC int
	first := true
	for _, f := range flows {
		c := perFlow[f]
		if first {
			minC, maxC = c, c
			first = false
		}
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if maxC-minC > 1 {
		t.Fatalf("flow spread uneven: %v", perFlow)
	}
}

func TestSaturatorValidation(t *testing.T) {
	eng := sim.New()
	alloc := &packet.Alloc{}
	sink := func(*packet.Packet) {}
	if _, err := NewSaturator(eng, alloc, nil, 0, 64, 1e6, 0, 0, sink); err == nil {
		t.Fatal("empty flow list accepted")
	}
	if _, err := NewSaturator(eng, alloc, []packet.FlowID{1}, 0, -1, 1e6, 0, 0, sink); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestOnOffAverageRate(t *testing.T) {
	eng := sim.New()
	alloc := &packet.Alloc{}
	var bytes int64
	// Peak 800Mbit, 50% duty cycle (2ms on / 2ms off) → ≈400Mbit mean.
	g, err := NewOnOff(eng, alloc, 1, 0, 1000, 800e6, 2e6, 2e6, 0, 400e6, 7, func(p *packet.Packet) {
		bytes += int64(p.Size)
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(400e6)
	rate := float64(bytes) * 8 / 0.4
	if rate < 300e6 || rate > 500e6 {
		t.Fatalf("mean rate = %.0fMbit, want ≈400M (50%% duty of 800M)", rate/1e6)
	}
	if g.Sent == 0 {
		t.Fatal("no packets sent")
	}
}

func TestOnOffBurstiness(t *testing.T) {
	eng := sim.New()
	alloc := &packet.Alloc{}
	// Track per-ms bins to confirm there ARE silent gaps and full-rate
	// bursts (a CBR would fill every bin evenly).
	bins := make(map[int64]int)
	_, err := NewOnOff(eng, alloc, 1, 0, 1000, 1e9, 1e6, 3e6, 0, 200e6, 42, func(p *packet.Packet) {
		bins[eng.Now()/1e6]++
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(200e6)
	var silent, busy int
	for i := int64(0); i < 200; i++ {
		switch n := bins[i]; {
		case n == 0:
			silent++
		case n > 100: // ≥80% of the 125 pkts/ms peak
			busy++
		}
	}
	if silent < 50 || busy < 10 {
		t.Fatalf("burst structure missing: %d silent, %d busy bins of 200", silent, busy)
	}
}

func TestOnOffValidation(t *testing.T) {
	eng := sim.New()
	alloc := &packet.Alloc{}
	sink := func(*packet.Packet) {}
	if _, err := NewOnOff(nil, alloc, 0, 0, 100, 1e6, 1e6, 1e6, 0, 0, 1, sink); err == nil {
		t.Fatal("nil engine accepted")
	}
	if _, err := NewOnOff(eng, alloc, 0, 0, 100, 1e6, 0, 1e6, 0, 0, 1, sink); err == nil {
		t.Fatal("zero on-period accepted")
	}
}
