package trafficgen

import (
	"testing"

	"flowvalve/internal/packet"
	"flowvalve/internal/sim"
)

// A zero-length send window (start == stop) emits nothing: the first
// emit fires at start, sees stop already reached, and stands down. This
// is the degenerate window fault plans produce when a connection's whole
// life lands inside a stall.
func TestCBRZeroLengthWindow(t *testing.T) {
	eng := sim.New()
	alloc := &packet.Alloc{}
	g, err := NewCBR(eng, alloc, 1, 0, 1518, 1e9, 1000, 1000, func(*packet.Packet) {
		t.Fatal("zero-length window emitted a packet")
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(1e6)
	if g.Sent != 0 {
		t.Fatalf("Sent = %d, want 0", g.Sent)
	}
}

func TestSaturatorZeroLengthWindow(t *testing.T) {
	eng := sim.New()
	alloc := &packet.Alloc{}
	s, err := NewSaturator(eng, alloc, []packet.FlowID{1}, 0, 1518, 40e9, 500, 500, func(*packet.Packet) {
		t.Fatal("zero-length window emitted a packet")
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(1e6)
	if s.Sent != 0 {
		t.Fatalf("Sent = %d, want 0", s.Sent)
	}
}

func TestOnOffZeroLengthWindow(t *testing.T) {
	eng := sim.New()
	alloc := &packet.Alloc{}
	g, err := NewOnOff(eng, alloc, 1, 0, 1518, 1e9, 1e6, 1e6, 2000, 2000, 42, func(*packet.Packet) {
		t.Fatal("zero-length window emitted a packet")
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(1e7)
	if g.Sent != 0 {
		t.Fatalf("Sent = %d, want 0", g.Sent)
	}
}

// Stop landing exactly on the start instant (same timestamp, Stop
// registered first) still lets the start event arm the source: the
// window is [start, next-emit-check), so exactly one packet escapes.
// Pinning this ordering keeps fault-plan arithmetic honest when a
// recovery boundary coincides with a generator start.
func TestCBRStopAtStartInstant(t *testing.T) {
	eng := sim.New()
	alloc := &packet.Alloc{}
	var sent int
	g, err := NewCBR(eng, alloc, 1, 0, 1518, 1e9, 1000, 0, func(*packet.Packet) { sent++ })
	if err != nil {
		t.Fatal(err)
	}
	g.Stop(1000) // same instant as start; start event was registered first
	eng.RunUntil(1e6)
	if sent != 1 || g.Sent != 1 {
		t.Fatalf("sent %d/%d packets, want exactly 1", sent, g.Sent)
	}
}
