package tree

import (
	"errors"
	"testing"
)

func motivationBuilder() *Builder {
	// The paper's motivation example (Fig 6): 10Gbps root, NC strictly
	// prior, vm1(S2):vm2(WS) = 2:1, KVS prior to ML inside S2, ML
	// guaranteed 2Gbps.
	return NewBuilder().
		Root("S0", 10e9).
		Add(ClassSpec{Name: "NC", Parent: "S0", Prio: 0}).
		Add(ClassSpec{Name: "S1", Parent: "S0", Prio: 1}).
		Add(ClassSpec{Name: "WS", Parent: "S1", Weight: 1, BorrowFrom: []string{"S2"}}).
		Add(ClassSpec{Name: "S2", Parent: "S1", Weight: 2}).
		Add(ClassSpec{Name: "KVS", Parent: "S2", Prio: 0, Weight: 1}).
		Add(ClassSpec{Name: "ML", Parent: "S2", Prio: 1, Weight: 1, GuaranteeBps: 2e9, BorrowFrom: []string{"S2", "KVS"}})
}

func TestBuildMotivationTree(t *testing.T) {
	tr, err := motivationBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 7 {
		t.Fatalf("Len() = %d, want 7", tr.Len())
	}
	if tr.Root().Name != "S0" {
		t.Fatalf("root = %s, want S0", tr.Root().Name)
	}
	ml, ok := tr.Lookup("ML")
	if !ok {
		t.Fatal("ML not found")
	}
	if ml.Depth != 3 {
		t.Fatalf("ML depth = %d, want 3", ml.Depth)
	}
	path := ml.Path()
	want := []string{"S0", "S1", "S2", "ML"}
	for i, c := range path {
		if c.Name != want[i] {
			t.Fatalf("ML path[%d] = %s, want %s", i, c.Name, want[i])
		}
	}
	if len(ml.BorrowFrom) != 2 || ml.BorrowFrom[0].Name != "S2" || ml.BorrowFrom[1].Name != "KVS" {
		t.Fatalf("ML borrow label wrong: %v", ml.BorrowFrom)
	}
}

func TestLeavesAndLabels(t *testing.T) {
	tr := motivationBuilder().MustBuild()
	leaves := tr.Leaves()
	if len(leaves) != 4 { // NC, WS, KVS, ML
		t.Fatalf("leaves = %d, want 4", len(leaves))
	}
	lbl, ok := tr.LabelByName("ML")
	if !ok || lbl.Leaf.Name != "ML" {
		t.Fatal("ML label missing")
	}
	if len(lbl.Path) != 4 || lbl.Path[0].Name != "S0" {
		t.Fatalf("label path wrong: %v", lbl.Path)
	}
	if lbl2 := tr.LabelFor(nil); lbl2 != nil {
		t.Fatal("LabelFor(nil) returned non-nil")
	}
	// Interior classes have no label.
	s2, _ := tr.Lookup("S2")
	if tr.LabelFor(s2) != nil {
		t.Fatal("interior class has a label")
	}
}

func TestChildrenSortedByPrio(t *testing.T) {
	tr := NewBuilder().
		Root("root", 1e9).
		Add(ClassSpec{Name: "c", Parent: "root", Prio: 2}).
		Add(ClassSpec{Name: "a", Parent: "root", Prio: 0}).
		Add(ClassSpec{Name: "b", Parent: "root", Prio: 1}).
		MustBuild()
	kids := tr.Root().Children
	if kids[0].Name != "a" || kids[1].Name != "b" || kids[2].Name != "c" {
		t.Fatalf("children not sorted by prio: %v %v %v", kids[0].Name, kids[1].Name, kids[2].Name)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name string
		b    *Builder
	}{
		{"empty", NewBuilder()},
		{"duplicate", NewBuilder().Root("r", 1e9).Add(ClassSpec{Name: "r", Parent: "r"})},
		{"unknown parent", NewBuilder().Root("r", 1e9).Add(ClassSpec{Name: "x", Parent: "nope"})},
		{"two roots", NewBuilder().Root("a", 1e9).Root("b", 1e9)},
		{"root without rate", NewBuilder().Add(ClassSpec{Name: "r"})},
		{"negative weight", NewBuilder().Root("r", 1e9).Add(ClassSpec{Name: "x", Parent: "r", Weight: -1})},
		{"negative rate", NewBuilder().Root("r", 1e9).Add(ClassSpec{Name: "x", Parent: "r", RateBps: -5})},
		{"unknown lender", NewBuilder().Root("r", 1e9).Add(ClassSpec{Name: "x", Parent: "r", BorrowFrom: []string{"ghost"}})},
		{"self borrow", NewBuilder().Root("r", 1e9).Add(ClassSpec{Name: "x", Parent: "r", BorrowFrom: []string{"x"}})},
		{"empty name", NewBuilder().Add(ClassSpec{Name: ""})},
		{"interior borrow", NewBuilder().Root("r", 1e9).
			Add(ClassSpec{Name: "mid", Parent: "r", BorrowFrom: []string{"r"}}).
			Add(ClassSpec{Name: "leaf", Parent: "mid"})},
	}
	for _, tc := range cases {
		if _, err := tc.b.Build(); err == nil {
			t.Errorf("%s: Build succeeded, want error", tc.name)
		}
	}
}

func TestBuildErrorSentinels(t *testing.T) {
	if _, err := NewBuilder().Build(); !errors.Is(err, ErrNoRoot) {
		t.Fatalf("err = %v, want ErrNoRoot", err)
	}
	if _, err := NewBuilder().Root("a", 1e9).Root("b", 1e9).Build(); !errors.Is(err, ErrMultipleRoots) {
		t.Fatalf("err = %v, want ErrMultipleRoots", err)
	}
}

func TestEffectiveWeightDefault(t *testing.T) {
	c := &Class{}
	if c.EffectiveWeight() != 1 {
		t.Fatal("zero weight should default to 1")
	}
	c.Weight = 2.5
	if c.EffectiveWeight() != 2.5 {
		t.Fatal("explicit weight not returned")
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild did not panic on invalid tree")
		}
	}()
	NewBuilder().MustBuild()
}
