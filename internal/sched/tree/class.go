// Package tree models FlowValve scheduling trees: the class hierarchy a
// policy compiles to, the per-packet QoS labels that direct the scheduling
// function, and the pure token-rate distribution math (priority residual,
// weighted split, guarantee floors, ceiling clamps) that the update
// subprocedure evaluates at every epoch.
//
// The tree is immutable configuration: all mutable runtime state (token
// buckets, shadow buckets, estimators, locks) lives in internal/core so
// that one tree can be shared by many scheduler instances and concurrent
// readers never need synchronization.
package tree

import "fmt"

// ClassID is a dense index identifying a class within its tree. IDs are
// assigned in construction order with the root always 0, so runtime state
// can live in flat slices indexed by ClassID.
type ClassID int

// Class is one node of a scheduling tree: a traffic class with its
// bandwidth-distribution parameters. Fields are read-only after Build.
type Class struct {
	// Name is the user-visible identifier (e.g. "1:10" or "ML").
	Name string
	// ID is the dense per-tree index.
	ID ClassID
	// Parent is nil for the root.
	Parent *Class
	// Children in configuration order; empty for leaves.
	Children []*Class
	// Depth is 0 for the root.
	Depth int

	// Prio orders siblings: lower values are strictly preferred when
	// distributing the parent's token rate. Siblings with equal Prio
	// share by Weight.
	Prio int
	// Weight is the share within the sibling priority group. Any
	// positive scale; normalized at computation time. Zero means 1.
	Weight float64
	// RateBps fixes the class's token rate in bits/second. Required on
	// the root (the policy ceiling); on other classes it overrides the
	// computed share (rarely used — prefer Weight/Prio).
	RateBps float64
	// CeilBps caps the computed token rate, 0 = no cap.
	CeilBps float64
	// GuaranteeBps is the committed rate floor (the paper's "guaranteed
	// bandwidth", e.g. ML's 2Gbps). The floor degrades to the class's
	// weight-fair share when the parent cannot cover it. 0 = none.
	GuaranteeBps float64
	// BorrowFrom lists the classes whose shadow buckets flows of this
	// leaf may query when their own bucket runs red, in query order.
	// Only meaningful on leaves.
	BorrowFrom []*Class
}

// Leaf reports whether the class has no children.
func (c *Class) Leaf() bool { return len(c.Children) == 0 }

// EffectiveWeight returns the weight with the zero-means-one default.
func (c *Class) EffectiveWeight() float64 {
	if c.Weight <= 0 {
		return 1
	}
	return c.Weight
}

// Path returns the root→class chain, root first.
func (c *Class) Path() []*Class {
	n := c.Depth + 1
	out := make([]*Class, n)
	for node := c; node != nil; node = node.Parent {
		n--
		out[n] = node
	}
	return out
}

// String implements fmt.Stringer for diagnostics.
func (c *Class) String() string {
	return fmt.Sprintf("class %s (id=%d prio=%d w=%g)", c.Name, c.ID, c.Prio, c.EffectiveWeight())
}

// Tree is an immutable scheduling tree.
type Tree struct {
	root    *Class
	classes []*Class // indexed by ClassID
	byName  map[string]*Class
	labels  map[ClassID]*Label // precomputed per leaf
}

// Root returns the root class.
func (t *Tree) Root() *Class { return t.root }

// Len returns the number of classes (including the root).
func (t *Tree) Len() int { return len(t.classes) }

// Class returns the class with the given ID, or nil if out of range.
func (t *Tree) Class(id ClassID) *Class {
	if int(id) < 0 || int(id) >= len(t.classes) {
		return nil
	}
	return t.classes[id]
}

// Classes returns all classes in ID order. The returned slice is shared;
// callers must not modify it.
func (t *Tree) Classes() []*Class { return t.classes }

// Lookup returns the class with the given name.
func (t *Tree) Lookup(name string) (*Class, bool) {
	c, ok := t.byName[name]
	return c, ok
}

// Leaves returns the leaf classes in ID order.
func (t *Tree) Leaves() []*Class {
	var out []*Class
	for _, c := range t.classes {
		if c.Leaf() {
			out = append(out, c)
		}
	}
	return out
}

// Label is the QoS label attached (as buffer metadata) to every packet of
// a leaf class: the hierarchy path driving scheduling-tree updates and the
// borrowing permissions. Labels are precomputed per leaf and shared.
type Label struct {
	// Leaf is the terminal class.
	Leaf *Class
	// Path is the root→leaf chain, root first.
	Path []*Class
	// Borrow lists lender classes to query on red, in order.
	Borrow []*Class
}

// LabelFor returns the precomputed label of a leaf class. It returns nil
// for interior classes — packets can only be classified to leaves.
func (t *Tree) LabelFor(c *Class) *Label {
	if c == nil {
		return nil
	}
	return t.labels[c.ID]
}

// LabelByName returns the label of the named leaf class.
func (t *Tree) LabelByName(name string) (*Label, bool) {
	c, ok := t.byName[name]
	if !ok {
		return nil, false
	}
	l := t.labels[c.ID]
	return l, l != nil
}
