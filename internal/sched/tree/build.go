package tree

import (
	"errors"
	"fmt"
	"sort"
)

// ClassSpec describes one class for Builder.Add. Names reference parents
// and lenders, so specs can be declared in any order as long as parents
// are added before children.
type ClassSpec struct {
	// Name must be unique within the tree.
	Name string
	// Parent is the parent class name; empty only for the root.
	Parent string
	// Prio, Weight, RateBps, CeilBps, GuaranteeBps mirror Class fields.
	Prio         int
	Weight       float64
	RateBps      float64
	CeilBps      float64
	GuaranteeBps float64
	// BorrowFrom names the classes whose shadow buckets this class's
	// flows may borrow from, in query order.
	BorrowFrom []string
}

// Builder accumulates class specs and assembles a validated Tree.
type Builder struct {
	specs []ClassSpec
	err   error
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Add appends a class spec. Errors are deferred to Build so call sites can
// chain Adds fluently.
func (b *Builder) Add(spec ClassSpec) *Builder {
	b.specs = append(b.specs, spec)
	return b
}

// Root is shorthand for adding the root class with a fixed rate ceiling.
func (b *Builder) Root(name string, rateBps float64) *Builder {
	return b.Add(ClassSpec{Name: name, RateBps: rateBps})
}

var (
	// ErrNoRoot is returned by Build when no root spec was added.
	ErrNoRoot = errors.New("tree: no root class")
	// ErrMultipleRoots is returned when more than one spec has no parent.
	ErrMultipleRoots = errors.New("tree: multiple root classes")
)

// Build validates the accumulated specs and returns the immutable tree.
func (b *Builder) Build() (*Tree, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.specs) == 0 {
		return nil, ErrNoRoot
	}

	byName := make(map[string]*Class, len(b.specs))
	classes := make([]*Class, 0, len(b.specs))
	var root *Class

	// First pass: create classes, link parents. Specs must list parents
	// before children (the fv front end guarantees this; programmatic
	// callers get a clear error otherwise).
	for _, spec := range b.specs {
		if spec.Name == "" {
			return nil, errors.New("tree: class with empty name")
		}
		if _, dup := byName[spec.Name]; dup {
			return nil, fmt.Errorf("tree: duplicate class name %q", spec.Name)
		}
		if spec.Weight < 0 {
			return nil, fmt.Errorf("tree: class %q has negative weight", spec.Name)
		}
		if spec.RateBps < 0 || spec.CeilBps < 0 || spec.GuaranteeBps < 0 {
			return nil, fmt.Errorf("tree: class %q has negative rate parameter", spec.Name)
		}
		c := &Class{
			Name:         spec.Name,
			ID:           ClassID(len(classes)),
			Prio:         spec.Prio,
			Weight:       spec.Weight,
			RateBps:      spec.RateBps,
			CeilBps:      spec.CeilBps,
			GuaranteeBps: spec.GuaranteeBps,
		}
		if spec.Parent == "" {
			if root != nil {
				return nil, ErrMultipleRoots
			}
			if c.RateBps <= 0 {
				return nil, fmt.Errorf("tree: root class %q needs a positive rate", spec.Name)
			}
			root = c
		} else {
			parent, ok := byName[spec.Parent]
			if !ok {
				return nil, fmt.Errorf("tree: class %q references unknown parent %q (parents must be declared first)", spec.Name, spec.Parent)
			}
			c.Parent = parent
			c.Depth = parent.Depth + 1
			parent.Children = append(parent.Children, c)
		}
		byName[spec.Name] = c
		classes = append(classes, c)
	}
	if root == nil {
		return nil, ErrNoRoot
	}

	// Second pass: resolve borrow labels (may reference any class).
	for i, spec := range b.specs {
		c := classes[i]
		for _, lender := range spec.BorrowFrom {
			lc, ok := byName[lender]
			if !ok {
				return nil, fmt.Errorf("tree: class %q borrows from unknown class %q", c.Name, lender)
			}
			if lc == c {
				return nil, fmt.Errorf("tree: class %q borrows from itself", c.Name)
			}
			c.BorrowFrom = append(c.BorrowFrom, lc)
		}
	}

	// Validation: borrow labels only make sense on leaves; interior
	// classes never meter so they never borrow.
	for _, c := range classes {
		if !c.Leaf() && len(c.BorrowFrom) > 0 {
			return nil, fmt.Errorf("tree: interior class %q cannot have a borrow label", c.Name)
		}
	}

	// Stable child order: priority groups ascending, then configuration
	// order. Rate computation iterates children grouped by Prio; sorting
	// here keeps that iteration allocation-free.
	for _, c := range classes {
		sortChildren(c.Children)
	}

	t := &Tree{
		root:    root,
		classes: classes,
		byName:  byName,
		labels:  make(map[ClassID]*Label),
	}
	for _, c := range classes {
		if c.Leaf() {
			t.labels[c.ID] = &Label{
				Leaf:   c,
				Path:   c.Path(),
				Borrow: c.BorrowFrom,
			}
		}
	}
	return t, nil
}

func sortChildren(children []*Class) {
	sort.SliceStable(children, func(i, j int) bool {
		return children[i].Prio < children[j].Prio
	})
}

// MustBuild is Build for tests and package-level examples; it panics on
// error.
func (b *Builder) MustBuild() *Tree {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}
