package tree

import (
	"math"
	"testing"
	"testing/quick"
)

func gammaMap(m map[string]float64) GammaFunc {
	return func(c *Class) float64 { return m[c.Name] }
}

func approx(a, b float64) bool {
	if b == 0 {
		return math.Abs(a) < 1e-6
	}
	return math.Abs(a-b)/math.Abs(b) < 1e-9
}

// Eq. 5: plain weighted split.
func TestChildRatesWeightedSplit(t *testing.T) {
	tr := NewBuilder().
		Root("p", 0.96e9). // 120e6 B/s
		Add(ClassSpec{Name: "a", Parent: "p", Weight: 1}).
		Add(ClassSpec{Name: "b", Parent: "p", Weight: 2}).
		MustBuild()
	rates := ChildRates(tr.Root(), 120e6, gammaMap(nil), nil)
	if !approx(rates[0], 40e6) || !approx(rates[1], 80e6) {
		t.Fatalf("weighted split = %v, want [40e6 80e6]", rates)
	}
}

// Eq. 4: priority residual — the prior class gets everything, the less
// prior class sees parent minus the prior class's measured consumption.
func TestChildRatesPriorityResidual(t *testing.T) {
	tr := NewBuilder().
		Root("p", 8e8). // 100e6 B/s
		Add(ClassSpec{Name: "hi", Parent: "p", Prio: 0}).
		Add(ClassSpec{Name: "lo", Parent: "p", Prio: 1}).
		MustBuild()

	// hi idle: lo gets everything.
	rates := ChildRates(tr.Root(), 100e6, gammaMap(map[string]float64{"hi": 0}), nil)
	if !approx(rates[0], 100e6) || !approx(rates[1], 100e6) {
		t.Fatalf("idle-hi rates = %v, want both 100e6", rates)
	}

	// hi consuming 90MB/s: lo throttled to the residual 10MB/s.
	rates = ChildRates(tr.Root(), 100e6, gammaMap(map[string]float64{"hi": 90e6}), rates)
	if !approx(rates[0], 100e6) {
		t.Fatalf("hi rate = %g, want full 100e6", rates[0])
	}
	if !approx(rates[1], 10e6) {
		t.Fatalf("lo rate = %g, want residual 10e6", rates[1])
	}
}

// Over-run of the prior class (burst tokens burned above the grant)
// subtracts in full — the residual floors at zero rather than going
// negative.
func TestChildRatesOverrunSubtractsFully(t *testing.T) {
	tr := NewBuilder().
		Root("p", 8e8).
		Add(ClassSpec{Name: "hi", Parent: "p", Prio: 0, CeilBps: 4e8}). // cap at 50MB/s
		Add(ClassSpec{Name: "lo", Parent: "p", Prio: 1}).
		MustBuild()
	rates := ChildRates(tr.Root(), 100e6, gammaMap(map[string]float64{"hi": 70e6}), nil)
	if !approx(rates[0], 50e6) {
		t.Fatalf("hi rate = %g, want ceil 50e6", rates[0])
	}
	if !approx(rates[1], 30e6) {
		t.Fatalf("lo rate = %g, want raw residual 30e6", rates[1])
	}
	// Extreme over-run: residual floors at zero.
	rates = ChildRates(tr.Root(), 100e6, gammaMap(map[string]float64{"hi": 200e6}), rates)
	if rates[1] != 0 {
		t.Fatalf("lo rate = %g, want 0", rates[1])
	}
}

// Ceiling template: NC capped to 3/4 of the parent (§IV-C "other
// conditions").
func TestChildRatesCeil(t *testing.T) {
	tr := NewBuilder().
		Root("p", 8e8).                                                 // 100e6 B/s
		Add(ClassSpec{Name: "nc", Parent: "p", Prio: 0, CeilBps: 6e8}). // 75e6 B/s
		Add(ClassSpec{Name: "s1", Parent: "p", Prio: 1}).
		MustBuild()
	rates := ChildRates(tr.Root(), 100e6, gammaMap(map[string]float64{"nc": 75e6}), nil)
	if !approx(rates[0], 75e6) {
		t.Fatalf("nc rate = %g, want ceil 75e6", rates[0])
	}
	if !approx(rates[1], 25e6) {
		t.Fatalf("s1 rate = %g, want 25e6", rates[1])
	}
}

// Guarantee semantics from the motivation example: ML keeps 2Gbps while
// S2 has at least 4Gbps; below that the split degrades to the 1:1 weights.
func TestChildRatesGuarantee(t *testing.T) {
	tr := NewBuilder().
		Root("s2", 64e8). // placeholder; we pass parentRate explicitly
		Add(ClassSpec{Name: "kvs", Parent: "s2", Prio: 0, Weight: 1}).
		Add(ClassSpec{Name: "ml", Parent: "s2", Prio: 1, Weight: 1, GuaranteeBps: 2e9}).
		MustBuild()
	g := gammaMap(map[string]float64{"kvs": 1e12, "ml": 1e12}) // both saturating

	// S2 = 8Gbps = 1e9 B/s: KVS gets 8−2 = 6Gbps, ML keeps 2Gbps.
	rates := ChildRates(tr.Root(), 1e9, g, nil)
	if !approx(rates[0], 750e6) {
		t.Fatalf("kvs = %g B/s, want 750e6 (6Gbps)", rates[0])
	}
	if !approx(rates[1], 250e6) {
		t.Fatalf("ml = %g B/s, want 250e6 (2Gbps)", rates[1])
	}

	// S2 = 3Gbps < 4Gbps: degrade to 1:1 → 1.5Gbps each.
	rates = ChildRates(tr.Root(), 375e6, g, rates)
	if !approx(rates[0], 187.5e6) || !approx(rates[1], 187.5e6) {
		t.Fatalf("degraded split = %v, want 187.5e6 each", rates)
	}
}

// Fixed-rate override template.
func TestChildRatesFixedOverride(t *testing.T) {
	tr := NewBuilder().
		Root("p", 8e8).
		Add(ClassSpec{Name: "fixed", Parent: "p", RateBps: 2e8}). // 25e6 B/s
		Add(ClassSpec{Name: "rest", Parent: "p"}).
		MustBuild()
	rates := ChildRates(tr.Root(), 100e6, gammaMap(map[string]float64{"fixed": 25e6}), nil)
	if !approx(rates[0], 25e6) {
		t.Fatalf("fixed = %g, want 25e6", rates[0])
	}
}

func TestChildRatesNoChildren(t *testing.T) {
	tr := NewBuilder().Root("p", 1e9).MustBuild()
	rates := ChildRates(tr.Root(), 1e6, gammaMap(nil), nil)
	if len(rates) != 0 {
		t.Fatalf("rates = %v, want empty", rates)
	}
}

func TestLendable(t *testing.T) {
	if Lendable(100, 30) != 70 {
		t.Fatal("lendable 100-30 != 70")
	}
	if Lendable(100, 150) != 0 {
		t.Fatal("lendable should floor at 0")
	}
}

// Property: with all children saturating (Γ = granted), the granted rates
// of one priority-group tree never total more than the parent rate plus
// the guarantee floors (the only intentional over-commitment, recovered
// by shadow borrowing), and every rate is non-negative and ceil-bounded.
func TestChildRatesBoundsProperty(t *testing.T) {
	check := func(w1, w2, w3 uint8, parentMBps uint16) bool {
		parent := float64(parentMBps) * 1e6
		tr := NewBuilder().
			Root("p", 8e9).
			Add(ClassSpec{Name: "a", Parent: "p", Prio: 0, Weight: float64(w1%8) + 1}).
			Add(ClassSpec{Name: "b", Parent: "p", Prio: 1, Weight: float64(w2%8) + 1}).
			Add(ClassSpec{Name: "c", Parent: "p", Prio: 1, Weight: float64(w3%8) + 1, CeilBps: 4e8}).
			MustBuild()
		// Saturating gammas: every class consumes what it is granted.
		granted := map[string]float64{}
		g := func(c *Class) float64 { return granted[c.Name] }
		rates := ChildRates(tr.Root(), parent, g, nil)
		for i, c := range tr.Root().Children {
			granted[c.Name] = rates[i]
		}
		// Second epoch with the measured consumption in place.
		rates = ChildRates(tr.Root(), parent, g, rates)
		var sum float64
		for i, c := range tr.Root().Children {
			r := rates[i]
			if r < 0 {
				return false
			}
			if c.CeilBps > 0 && r > c.CeilBps/8+1e-6 {
				return false
			}
			sum += r
		}
		return sum <= parent+1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
