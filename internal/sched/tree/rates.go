package tree

// This file implements the token-rate distribution math of §IV-C: given a
// parent's current token rate θ_parent and the measured consumption rates
// Γ of its children, compute each child's token rate for the next epoch.
//
// The rules, composed exactly as the paper's condition templates:
//
//   - Priority (Eq. 4): children are processed in ascending Prio order;
//     each priority level sees the parent rate minus the *measured*
//     consumption of all higher-priority levels (θ_rest = θ_parent − ΣΓ).
//   - Weight (Eq. 5): within one priority level, the available rate is
//     split proportionally to the children's weights.
//   - Guarantee: a child with a committed rate g keeps at least
//     min(g, weight-fair share of the parent) — full g while the parent
//     can cover all guarantees, degrading to the plain weighted share
//     when it cannot (the paper's ML example: 2Gbps guaranteed while the
//     pool exceeds 4Gbps, 1:1 weighted split below). Guarantee floors of
//     lower-priority children are reserved before higher-priority levels
//     are served, so a sustained high-priority load can never starve a
//     committed class.
//   - Ceil: a hard cap applied last (the paper's "restrict NC's ceiling
//     bandwidth to 3/4·B" template).
//   - Fixed rate: a non-root class with RateBps set bypasses the computed
//     share entirely (still ceil-clamped).
//
// All rates here are bytes/second (converted from the user-facing
// bits/second by the caller); Γ values come from the estimators.

// GammaFunc reports the current measured consumption rate Γ of a class in
// bytes/second. Implementations must treat expired state as zero (the
// expired-status-removal subprocedure); the core scheduler wraps its
// estimators accordingly.
type GammaFunc func(*Class) float64

// ChildRates computes the next-epoch token rate (bytes/second) for each
// child of parent, in parent.Children order (which is sorted by ascending
// Prio). parentRate is θ_parent in bytes/second. The out slice is reused
// when its capacity suffices.
func ChildRates(parent *Class, parentRate float64, gamma GammaFunc, out []float64) []float64 {
	children := parent.Children
	if cap(out) < len(children) {
		out = make([]float64, len(children))
	}
	out = out[:len(children)]
	if len(children) == 0 {
		return out
	}

	// Weight-fair share of the parent across *all* children — the
	// degradation target for guarantee floors.
	var totalW float64
	for _, c := range children {
		totalW += c.EffectiveWeight()
	}

	// Guarantee floors, demand-independent: min(g, fair share).
	floors := make([]float64, len(children))
	for i, c := range children {
		if c.GuaranteeBps <= 0 {
			continue
		}
		g := c.GuaranteeBps / 8
		fair := parentRate * c.EffectiveWeight() / totalW
		floors[i] = min(g, fair)
	}

	avail := parentRate
	i := 0
	for i < len(children) {
		// Identify the priority group [i, j).
		j := i + 1
		for j < len(children) && children[j].Prio == children[i].Prio {
			j++
		}

		// Reserve the guarantee floors of strictly lower-priority
		// children before serving this level.
		var reservedBelow float64
		for k := j; k < len(children); k++ {
			reservedBelow += floors[k]
		}
		availGroup := max(0, avail-reservedBelow)

		var groupW float64
		for k := i; k < j; k++ {
			groupW += children[k].EffectiveWeight()
		}

		var consumed float64
		for k := i; k < j; k++ {
			c := children[k]
			rate := availGroup * c.EffectiveWeight() / groupW
			if c.RateBps > 0 && c.Parent != nil {
				// Fixed-rate override (condition template).
				rate = c.RateBps / 8
			}
			rate = max(rate, floors[k])
			if c.CeilBps > 0 {
				rate = min(rate, c.CeilBps/8)
			}
			out[k] = rate
			// The *measured* usage of this level reduces what
			// lower levels see next (Eq. 4) — raw Γ, not clamped
			// by the grant: when a class burns banked burst tokens
			// above its rate, lower levels must see the full
			// subtraction or the sawtooth rectifies into sustained
			// over-admission.
			consumed += gamma(c)
		}
		avail = max(0, avail-consumed)
		i = j
	}
	return out
}

// Lendable computes the shadow-bucket token rate of a class (Eq. 6):
// the granted rate minus the measured consumption, floored at zero.
func Lendable(rate, gamma float64) float64 {
	return max(0, rate-gamma)
}
