// Package flowvalve is the public API of the FlowValve reproduction — a
// parallel packet scheduler for NP-based SmartNICs that offloads Linux
// traffic-control classification and queueing disciplines (PRIO, HTB)
// onto the NIC, enforcing hierarchies of network policies with
// hierarchical token buckets, dataplane rate estimation, and specialized
// tail drop (Xi, Li, Wang — ICDCS 2022).
//
// The package offers two entry points:
//
//   - A policy compiler and scheduler you can embed in your own
//     datapath: ParsePolicy compiles fv/tc-style command scripts into a
//     scheduling tree, and NewScheduler instantiates the scheduling
//     function, safe to call from any number of worker goroutines — the
//     software analogue of the NP micro-engines.
//
//   - A discrete-event SmartNIC simulation (see sim.go) that reproduces
//     the paper's testbed: a Netronome-class NP model, closed-loop TCP
//     traffic, and the software baselines (kernel HTB/PRIO, DPDK QoS
//     Scheduler) it is evaluated against.
package flowvalve

import (
	"fmt"
	"sync"
	"sync/atomic"

	"flowvalve/internal/classifier"
	"flowvalve/internal/clock"
	"flowvalve/internal/core"
	"flowvalve/internal/dataplane"
	"flowvalve/internal/faults"
	"flowvalve/internal/fvconf"
	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/token"
)

// Policy is a compiled QoS policy: the scheduling tree (class hierarchy
// with priorities, weights, guarantees, ceilings, and borrow labels) plus
// the filter rules that classify packets to leaf classes.
type Policy struct {
	script *fvconf.Script
	tree   *tree.Tree
	rules  []classifier.Rule
}

// ParsePolicy compiles an fv command script (tc-inherited syntax, §III-E
// of the paper) into a Policy. See internal/fvconf for the grammar; the
// canonical example:
//
//	fv qdisc add dev nfp0 root handle 1: htb rate 10gbit default 1:30
//	fv class add dev nfp0 parent 1: classid 1:1 htb prio 0
//	fv filter add dev nfp0 parent 1: protocol ip app 0 flowid 1:1
func ParsePolicy(script string) (*Policy, error) {
	s, err := fvconf.Parse(script)
	if err != nil {
		return nil, err
	}
	t, rules, err := s.Compile()
	if err != nil {
		return nil, err
	}
	return &Policy{script: s, tree: t, rules: rules}, nil
}

// MotivationPolicy returns the paper's motivation example (Fig 2/6):
// 10Gbps, NC strictly prior, vm1:vm2 = 2:1, KVS prior to ML, ML
// guaranteed 2Gbps. Apps: 0=NC, 1=KVS, 2=ML, 3=WS.
func MotivationPolicy() *Policy {
	p, err := ParsePolicy(fvconf.MotivationScript)
	if err != nil {
		panic("flowvalve: canonical motivation policy failed to compile: " + err.Error())
	}
	return p
}

// FairQueuePolicy returns an n-way fair-queueing policy at the given rate
// (e.g. "40gbit") with full mutual borrowing — the paper's Fig 11(b)
// configuration.
func FairQueuePolicy(rate string, n int) (*Policy, error) {
	return ParsePolicy(fvconf.FairQueueScript(rate, n))
}

// Describe renders the compiled policy in fv show format.
func (p *Policy) Describe() string {
	out, err := p.script.Describe()
	if err != nil {
		// The policy compiled at construction; Describe re-compiles
		// the same script, so this cannot fail.
		panic("flowvalve: describe of compiled policy failed: " + err.Error())
	}
	return out
}

// Classes returns the class names in the policy, root first.
func (p *Policy) Classes() []string {
	out := make([]string, 0, p.tree.Len())
	for _, c := range p.tree.Classes() {
		out = append(out, c.Name)
	}
	return out
}

// Clock is a monotonic nanosecond time source driving a Scheduler.
type Clock = clock.Clock

// NewWallClock returns a Clock backed by real time — use it when
// embedding the scheduler in a live datapath.
func NewWallClock() Clock { return clock.NewWall() }

// Options tunes a Scheduler. The zero value uses the paper-calibrated
// defaults.
type Options struct {
	// UpdateIntervalNs is the epoch between token-bucket updates of one
	// class (default 250µs).
	UpdateIntervalNs int64
	// ExpireAfterNs is the idle threshold for expired-status removal
	// (default 50ms).
	ExpireAfterNs int64
	// BurstNs sizes class buckets to θ·BurstNs (default 4ms).
	BurstNs int64
	// FlowCacheSize bounds the exact-match flow cache of the labeling
	// function in entries (default 65536). The cache never grows past
	// it: new flows beyond capacity displace cold entries (CLOCK).
	FlowCacheSize int
	// FlowCacheShards is the cache's concurrency sharding (default 8,
	// rounded up to a power of two). Lookup hits are lock-free; misses
	// serialize per shard.
	FlowCacheShards int
	// Shards partitions the scheduling tree across N scheduler shards
	// (default 1 — the single-scheduler behaviour, bit-identical to
	// prior releases). Whole top-level subtrees co-locate on a shard;
	// cross-shard bandwidth lending settles at epoch boundaries. More
	// than one shard trades exact global work conservation between
	// settlements for multi-core scaling.
	Shards int
	// Telemetry, when non-nil, attaches the scheduler to an observability
	// sink: per-class metric families registered at construction (and
	// re-registered on Swap, so collectors follow the live policy) plus
	// sampled decision tracing. Nil keeps the hot path telemetry-free.
	Telemetry *Telemetry
	// Faults, when non-nil, installs the plan's scheduler-scoped fault
	// windows (lock contention, epoch drop/delay) and clock jitter on the
	// scheduler — deterministic chaos for resilience testing. NIC-scoped
	// kinds in the plan are ignored here (there is no NIC model to
	// wound); use Scenario.Faults for those. Nil keeps the fault-free
	// hot path at one atomic load.
	Faults *FaultPlan
}

// Scheduler is a FlowValve instance: the labeling function (filter rules
// + exact-match flow cache) and the scheduling function (Algorithm 1)
// over one policy. Schedule is safe for concurrent use, and the policy
// can be replaced at runtime with Swap — the front end repopulating the
// SmartNIC shared memory with a new configuration.
type Scheduler struct {
	clk   Clock
	opts  Options
	inner atomic.Pointer[schedulerInner]
}

// schedulerInner is one compiled policy generation. The scheduling
// function is always the sharded container — at the default Shards=1
// it delegates every call straight to one plain core scheduler, so the
// single-shard facade is bit-identical to prior releases.
type schedulerInner struct {
	pol   *Policy
	cls   *classifier.Classifier
	sched *core.ShardedScheduler
}

func buildInner(p *Policy, clk Clock, opts Options) (*schedulerInner, error) {
	cls, err := classifier.NewSized(p.tree, p.rules, p.script.DefaultClass,
		classifier.CacheConfig{Size: opts.FlowCacheSize, Shards: opts.FlowCacheShards})
	if err != nil {
		return nil, err
	}
	if fp := opts.Faults; fp != nil {
		if err := fp.Validate(); err != nil {
			return nil, err
		}
		if fp.Has(faults.KindClockJitter) {
			jc := token.NewJitteredClock(clk)
			jc.SetJitter(fp.Seed, fp.JitterWindows())
			clk = jc
		}
	}
	sched, err := core.NewSharded(p.tree, clk, core.Config{
		UpdateIntervalNs: opts.UpdateIntervalNs,
		ExpireAfterNs:    opts.ExpireAfterNs,
		BurstNs:          opts.BurstNs,
	}, core.ShardConfig{Shards: opts.Shards})
	if err != nil {
		return nil, err
	}
	if opts.Faults != nil {
		if err := sched.ApplyFaults(opts.Faults); err != nil {
			return nil, err
		}
	}
	if opts.Telemetry != nil {
		sched.AttachTelemetry(opts.Telemetry.reg, opts.Telemetry.tracer)
	}
	return &schedulerInner{pol: p, cls: cls, sched: sched}, nil
}

// NewScheduler instantiates the scheduling function for a policy.
func NewScheduler(p *Policy, clk Clock, opts Options) (*Scheduler, error) {
	if p == nil {
		return nil, fmt.Errorf("flowvalve: nil policy")
	}
	if clk == nil {
		clk = NewWallClock()
	}
	in, err := buildInner(p, clk, opts)
	if err != nil {
		return nil, err
	}
	s := &Scheduler{clk: clk, opts: opts}
	s.inner.Store(in)
	return s, nil
}

// Swap atomically replaces the active policy: packets scheduled after
// Swap returns are classified and rate-controlled under the new policy
// with fresh runtime state. FlowHandles pinned before the swap keep
// operating under the old policy until re-pinned (their classes may no
// longer exist in the new tree).
func (s *Scheduler) Swap(p *Policy) error {
	if p == nil {
		return fmt.Errorf("flowvalve: nil policy")
	}
	in, err := buildInner(p, s.clk, s.opts)
	if err != nil {
		return err
	}
	s.inner.Store(in)
	return nil
}

// Policy returns the currently active policy.
func (s *Scheduler) Policy() *Policy { return s.inner.Load().pol }

// Verdict is the forwarding decision for one packet.
type Verdict int

const (
	// Forward admits the packet.
	Forward Verdict = iota + 1
	// Drop discards it (the specialized tail drop).
	Drop
	// Unclassified means no filter rule matched and the policy has no
	// default class.
	Unclassified
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case Forward:
		return "forward"
	case Drop:
		return "drop"
	case Unclassified:
		return "unclassified"
	default:
		return "invalid"
	}
}

// Decision reports the outcome of scheduling one packet.
type Decision struct {
	Verdict Verdict
	// Class is the leaf class the packet matched ("" if unclassified).
	Class string
	// Borrowed is true when the packet passed on a lender's shadow
	// bucket; Lender names it.
	Borrowed bool
	Lender   string
}

// Schedule classifies and schedules one packet of `size` bytes from the
// given application (virtual function) and flow, returning the
// forwarding decision.
//
// Classification is not synchronized — when calling from multiple
// goroutines, classify flows up front with Pin or shard packets by flow.
func (s *Scheduler) Schedule(app, flow uint32, size int) Decision {
	in := s.inner.Load()
	p := packet.Packet{App: packet.AppID(app), Flow: packet.FlowID(flow), Size: size}
	lbl, _ := in.cls.Lookup(&p)
	return in.scheduleLabel(lbl, size)
}

// Pin resolves and caches the classification of one flow, returning a
// handle whose Schedule method is safe for concurrent use from any
// goroutine with zero allocation.
func (s *Scheduler) Pin(app, flow uint32) (*FlowHandle, error) {
	in := s.inner.Load()
	p := packet.Packet{App: packet.AppID(app), Flow: packet.FlowID(flow)}
	lbl, _ := in.cls.Lookup(&p)
	if lbl == nil {
		return nil, fmt.Errorf("flowvalve: flow (app=%d, flow=%d) matches no rule and there is no default class", app, flow)
	}
	return &FlowHandle{in: in, lbl: lbl}, nil
}

// FlowHandle is a pinned classification for one flow, bound to the
// policy generation it was pinned under.
type FlowHandle struct {
	in  *schedulerInner
	lbl *tree.Label
}

// Class returns the leaf class the flow is pinned to.
func (h *FlowHandle) Class() string { return h.lbl.Leaf.Name }

// Schedule runs the scheduling function for one packet of the pinned
// flow. Safe for concurrent use.
func (h *FlowHandle) Schedule(size int) Decision {
	return h.in.scheduleLabel(h.lbl, size)
}

// facadeBatch holds the pooled request/decision buffers behind
// FlowHandle.ScheduleBatch, so batched callers allocate nothing in
// steady state.
type facadeBatch struct {
	reqs []dataplane.Request
	decs []dataplane.Decision
}

var facadeBatchPool = sync.Pool{New: func() any { return new(facadeBatch) }}

// ScheduleBatch runs the scheduling function for a burst of packets of
// the pinned flow in one amortized pass (one clock read and at most one
// epoch update per class for the whole burst), writing out[i] for
// sizes[i]. len(out) must be at least len(sizes). Safe for concurrent
// use; a burst of one is exactly Schedule.
func (h *FlowHandle) ScheduleBatch(sizes []int, out []Decision) {
	n := len(sizes)
	if n == 0 {
		return
	}
	out = out[:n]
	b := facadeBatchPool.Get().(*facadeBatch)
	if cap(b.reqs) < n {
		b.reqs = make([]dataplane.Request, n)
		b.decs = make([]dataplane.Decision, n)
	}
	reqs, decs := b.reqs[:n], b.decs[:n]
	for i, sz := range sizes {
		reqs[i] = dataplane.Request{Label: h.lbl, Size: sz}
	}
	h.in.sched.ScheduleBatch(reqs, decs)
	class := h.lbl.Leaf.Name
	for i := range decs {
		o := Decision{Class: class}
		if decs[i].Verdict == core.Forward {
			o.Verdict = Forward
		} else {
			o.Verdict = Drop
		}
		if decs[i].Borrowed {
			o.Borrowed = true
			o.Lender = decs[i].Lender.Name
		}
		out[i] = o
	}
	facadeBatchPool.Put(b)
}

func (in *schedulerInner) scheduleLabel(lbl *tree.Label, size int) Decision {
	if lbl == nil {
		return Decision{Verdict: Unclassified}
	}
	d := in.sched.Schedule(lbl, size)
	out := Decision{Class: lbl.Leaf.Name}
	if d.Verdict == core.Forward {
		out.Verdict = Forward
	} else {
		out.Verdict = Drop
	}
	if d.Borrowed {
		out.Borrowed = true
		out.Lender = d.Lender.Name
	}
	return out
}

// ClassStats is a monitoring snapshot of one traffic class.
type ClassStats struct {
	Class string
	// ThetaBps is the granted token rate; GammaBps the measured
	// consumption rate; LendableBps the published shadow rate — all in
	// bits/second.
	ThetaBps    float64
	GammaBps    float64
	LendableBps float64
	// BucketTokens is the class token-bucket level in bytes — the
	// emulated per-class queue headroom. ShadowTokens is the level of the
	// shadow bucket other classes borrow from.
	BucketTokens int64
	ShadowTokens int64
	// Leaf counters. FwdPkts/FwdBytes and DropPkts/DropBytes count
	// admitted and tail-dropped traffic; BorrowPkts counts packets
	// admitted on a lender's shadow bucket; MarkPkts counts packets that
	// passed inside the early-drop warning window (bucket below the mark
	// threshold); LentBytes counts bytes this class's shadow bucket lent
	// to borrowers (non-zero on interior classes too).
	FwdPkts    int64
	FwdBytes   int64
	DropPkts   int64
	DropBytes  int64
	BorrowPkts int64
	MarkPkts   int64
	LentBytes  int64
}

// CacheStats is a snapshot of the labeling function's exact-match flow
// cache. See classifier.CacheStats for field semantics.
type CacheStats = classifier.CacheStats

// FlowCacheStats snapshots the active policy's flow cache: hit/miss/
// eviction counters plus the current size against the configured bound.
// A Swap installs a fresh (empty) cache with the new policy.
func (s *Scheduler) FlowCacheStats() CacheStats {
	return s.inner.Load().cls.Stats()
}

// Stats snapshots every class in the active policy.
func (s *Scheduler) Stats() []ClassStats {
	raw := s.inner.Load().sched.Snapshot()
	out := make([]ClassStats, len(raw))
	for i, st := range raw {
		out[i] = ClassStats{
			Class:        st.Class.Name,
			ThetaBps:     st.ThetaBps,
			GammaBps:     st.GammaBps,
			LendableBps:  st.LendableBps,
			BucketTokens: st.BucketTokens,
			ShadowTokens: st.ShadowTokens,
			FwdPkts:      st.FwdPkts,
			FwdBytes:     st.FwdBytes,
			DropPkts:     st.DropPkts,
			DropBytes:    st.DropBytes,
			BorrowPkts:   st.BorrowPkts,
			MarkPkts:     st.MarkPkts,
			LentBytes:    st.LentBytes,
		}
	}
	return out
}
