package flowvalve

import (
	"io"
	"net/http"

	"flowvalve/internal/telemetry"
)

// TelemetryOptions tunes a Telemetry instance. The zero value uses
// defaults suitable for production datapaths.
type TelemetryOptions struct {
	// TraceSampleEvery records one decision trace event per N scheduled
	// packets (rounded up to a power of two; default 256). 1 traces every
	// packet.
	TraceSampleEvery int
	// TraceBufferSize bounds the trace ring in events (rounded to a power
	// of two, split across internal shards; default 4096). The ring keeps
	// the most recent events and overwrites the oldest.
	TraceBufferSize int
}

// Telemetry aggregates the observability state for one or more
// Schedulers: a metrics registry fed by the schedulers it is attached to
// (via Options.Telemetry) and a sampled decision tracer. All methods are
// safe for concurrent use with live Schedule traffic.
type Telemetry struct {
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
}

// NewTelemetry builds an empty telemetry sink. Pass it in
// Options.Telemetry when constructing a Scheduler; the scheduler then
// registers its metric families and feeds the tracer. Hot-path overhead
// is a single atomic pointer load plus one mask test per packet.
func NewTelemetry(opts TelemetryOptions) *Telemetry {
	every := opts.TraceSampleEvery
	if every <= 0 {
		every = 256
	}
	buf := opts.TraceBufferSize
	if buf <= 0 {
		buf = 4096
	}
	return &Telemetry{
		reg:    telemetry.NewRegistry(),
		tracer: telemetry.NewTracer(every, buf),
	}
}

// Handler returns an http.Handler exposing the registry at /metrics
// (Prometheus text exposition), /metrics.json (JSON snapshot), and
// /healthz.
func (t *Telemetry) Handler() http.Handler { return t.reg.Handler() }

// WritePrometheus writes the current metric values in Prometheus text
// exposition format.
func (t *Telemetry) WritePrometheus(w io.Writer) error {
	return t.reg.WritePrometheus(w)
}

// WriteJSON writes the current metric values as an indented JSON
// document.
func (t *Telemetry) WriteJSON(w io.Writer) error { return t.reg.WriteJSON(w) }

// Dump renders the current metric values in Prometheus text format —
// convenient for logging at the end of a headless run.
func (t *Telemetry) Dump() string { return t.reg.Dump() }

// TraceEvent is one sampled scheduling decision.
type TraceEvent struct {
	// AtNs is the scheduler-clock timestamp.
	AtNs int64
	// Class is the leaf class; Verdict its decision.
	Class   string
	Verdict Verdict
	// Borrowed marks a packet passed on a lender's shadow bucket, Lender
	// names it; Marked is the early-drop warning window.
	Borrowed bool
	Marked   bool
	Lender   string
	// Size is the packet size in bytes; QueueDepth the class bucket level
	// (bytes) observed at decision time.
	Size       int
	QueueDepth int
}

// DrainTrace removes and returns the buffered trace events, oldest
// first. Each returned event stands for roughly TraceSampleEvery
// scheduled packets.
func (t *Telemetry) DrainTrace() []TraceEvent {
	raw := t.tracer.Drain()
	out := make([]TraceEvent, len(raw))
	for i, ev := range raw {
		out[i] = TraceEvent{
			AtNs:       ev.AtNs,
			Class:      ev.Class,
			Borrowed:   ev.Borrowed,
			Marked:     ev.Marked,
			Lender:     ev.Lender,
			Size:       int(ev.Size),
			QueueDepth: int(ev.QueueDepth),
		}
		if ev.Verdict == telemetry.TraceForward {
			out[i].Verdict = Forward
		} else {
			out[i].Verdict = Drop
		}
	}
	return out
}
