package flowvalve

import (
	"flowvalve/internal/core"
	"flowvalve/internal/experiments"
	"flowvalve/internal/nic"
)

// This file exposes the discrete-event SmartNIC simulation through the
// public API: build a Scenario (policy + staged TCP applications), run it
// against FlowValve on the NP model, and read back per-app throughput
// series and latency statistics — the same machinery that regenerates
// the paper's figures (see internal/experiments and cmd/fvsim).

// AppTraffic stages one application's TCP traffic in a Scenario.
type AppTraffic struct {
	// App is the application / virtual-function index the filter rules
	// match on.
	App int
	// Conns is the number of parallel TCP connections (≥1).
	Conns int
	// StartSec / StopSec bound the sending period in simulated seconds
	// (StopSec 0 = until the end).
	StartSec float64
	StopSec  float64
}

// Scenario is a closed-loop simulation: staged TCP applications driving
// a FlowValve-offloaded SmartNIC enforcing the given policy.
type Scenario struct {
	// Policy is the compiled QoS policy (required).
	Policy *Policy
	// DurationSec is the simulated time (default 10s).
	DurationSec float64
	// WireGbps is the NIC wire rate (default 40).
	WireGbps float64
	// WirePorts is the number of egress ports (default 4 — the paper's
	// four 10GbE receivers).
	WirePorts int
	// Apps stages the traffic.
	Apps []AppTraffic
	// MeasureLatency records per-packet one-way delay.
	MeasureLatency bool
	// SegBytes is the TCP segment size handed to the NIC (default 16KB
	// TSO super-segments; use 1518 for per-frame latency realism).
	SegBytes int
	// ECN enables the mark-on-red extension: red packets are forwarded
	// with a congestion mark (which the TCP model obeys) instead of
	// being dropped.
	ECN bool
	// Faults, when non-nil, injects the plan's timed faults (core
	// stalls, cache flushes, ring overflow, clock jitter, epoch
	// drop/delay, lock contention) into the simulated NIC and scheduler.
	// A graceful-degradation watchdog runs alongside unless WatchdogOff.
	Faults *FaultPlan
	// WatchdogOff disables the degradation watchdog in a faulted run —
	// the ablation that shows raw fault impact.
	WatchdogOff bool
}

// SimResult is the outcome of a Scenario run.
type SimResult struct {
	res *experiments.Result
	sec float64
}

// Run executes the scenario deterministically and returns its
// measurements.
func (sc Scenario) Run() (*SimResult, error) {
	duration := sc.DurationSec
	if duration <= 0 {
		duration = 10
	}
	wire := sc.WireGbps
	if wire <= 0 {
		wire = 40
	}
	inner := experiments.TCPScenario{
		DurationNs:     int64(duration * 1e9),
		BinNs:          int64(duration * 1e9 / 100),
		SegBytes:       sc.SegBytes,
		Tree:           sc.Policy.tree,
		Rules:          sc.Policy.rules,
		DefaultClass:   sc.Policy.script.DefaultClass,
		NIC:            nic.Config{WireRateBps: wire * 1e9, WirePorts: sc.WirePorts},
		Sched:          core.Config{ECNMarkFrac: ecnFrac(sc.ECN)},
		MeasureLatency: sc.MeasureLatency,
		Faults:         sc.Faults,
		WatchdogOff:    sc.WatchdogOff,
	}
	for _, a := range sc.Apps {
		inner.Apps = append(inner.Apps, experiments.AppSpec{
			App:     a.App,
			Conns:   a.Conns,
			StartNs: int64(a.StartSec * 1e9),
			StopNs:  int64(a.StopSec * 1e9),
		})
	}
	res, err := experiments.RunFlowValveTCP(inner)
	if err != nil {
		return nil, err
	}
	return &SimResult{res: res, sec: duration}, nil
}

// ecnFrac maps the boolean facade switch to the default mark threshold.
func ecnFrac(on bool) float64 {
	if on {
		return 0.5
	}
	return 0
}

// AppGbps returns an app's mean rate in Gbps over [fromSec, toSec).
func (r *SimResult) AppGbps(app int, fromSec, toSec float64) float64 {
	return r.res.MeanWindowBps(app, int64(fromSec*1e9), int64(toSec*1e9)) / 1e9
}

// TotalGbps returns the aggregate mean rate over [fromSec, toSec).
func (r *SimResult) TotalGbps(fromSec, toSec float64) float64 {
	return r.res.Meter.TotalBps(int64(fromSec*1e9), int64(toSec*1e9)) / 1e9
}

// Series returns an app's throughput curve in Gbps per bin (100 bins per
// run).
func (r *SimResult) Series(app int) []float64 {
	raw := r.res.Meter.Series(experiments.AppSeries(app))
	out := make([]float64, len(raw))
	for i, v := range raw {
		out[i] = v / 1e9
	}
	return out
}

// Latency returns (mean, stddev, p99) one-way delay in microseconds.
// Zeros unless MeasureLatency was set.
func (r *SimResult) Latency() (meanUs, stdUs, p99Us float64) {
	if r.res.Latency == nil {
		return 0, 0, 0
	}
	return r.res.Latency.MeanUs(), r.res.Latency.StdUs(), r.res.Latency.PercentileUs(99)
}

// SchedDrops returns packets dropped by the scheduling function (the
// intended control action) and by uncontrolled buffer overflows.
func (r *SimResult) SchedDrops() (sched, overflow uint64) {
	st := r.res.NICStats
	return st.SchedDrops, st.RxRingDrops + st.TMDrops
}

// FaultsInjected returns the per-kind injected-fault counters (nil when
// the scenario ran fault-free).
func (r *SimResult) FaultsInjected() map[FaultKind]int64 {
	if r.res.Faults == nil {
		return nil
	}
	return r.res.Faults.Injected
}

// WatchdogStats reports the degradation watchdog's activity: organic
// recoveries, safe-rate bridge refills, classes still degraded at the
// end of the run, and the mean degradation→recovery latency. All zeros
// when no watchdog ran.
func (r *SimResult) WatchdogStats() (recoveries, forcedRefills int64, degradedAtEnd int, meanRecoveryNs float64) {
	wd := r.res.Watchdog
	if wd == nil {
		return 0, 0, 0, 0
	}
	return wd.Recoveries(), wd.ForcedRefills(), wd.DegradedNow(), wd.MeanRecoveryNs()
}
