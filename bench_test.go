// Benchmarks regenerating every table and figure of the paper's
// evaluation (§V) plus the design-space ablations called out in
// DESIGN.md. The figure benches run a scaled simulation per iteration
// and report the headline quantities as custom metrics (Gbps, Mpps, µs),
// so `go test -bench=. -benchmem` doubles as a compact reproduction of
// the evaluation; cmd/fvsim produces the full-scale numbers recorded in
// EXPERIMENTS.md.
package flowvalve_test

import (
	"fmt"
	"runtime"
	"testing"

	"flowvalve"
	"flowvalve/internal/classifier"
	"flowvalve/internal/clock"
	"flowvalve/internal/core"
	"flowvalve/internal/experiments"
	"flowvalve/internal/offload"
	"flowvalve/internal/packet"
	"flowvalve/internal/sched/tree"
	"flowvalve/internal/telemetry"
)

const benchScale = 0.1 // 4.5 simulated seconds per figure iteration

// ---------------------------------------------------------------------
// Scheduling-function microbenchmarks (the offloaded hot path).
// ---------------------------------------------------------------------

func newBenchScheduler(b *testing.B, depth int, lock core.LockMode) (*core.Scheduler, *tree.Label) {
	b.Helper()
	builder := tree.NewBuilder().Root("root", 1e15) // never drops
	parent := "root"
	for d := 1; d <= depth; d++ {
		name := fmt.Sprintf("c%d", d)
		builder.Add(tree.ClassSpec{Name: name, Parent: parent})
		parent = name
	}
	t, err := builder.Build()
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.New(t, clock.NewWall(), core.Config{Lock: lock})
	if err != nil {
		b.Fatal(err)
	}
	lbl, ok := t.LabelByName(parent)
	if !ok {
		b.Fatal("no label")
	}
	return s, lbl
}

// BenchmarkSchedule is the per-packet cost of Algorithm 1 on a two-level
// tree — the work each NP micro-engine does per packet.
func BenchmarkSchedule(b *testing.B) {
	s, lbl := newBenchScheduler(b, 1, core.PerClassTryLock)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(lbl, 1500)
	}
}

// BenchmarkScheduleBatch sweeps the batched hot path: one clock read,
// one epoch check per class, one estimator Count per class, per batch.
// The acceptance bar is ≥25% lower ns/packet than BenchmarkSchedule at
// batch 32 with zero allocations (the scratch lives in a sync.Pool).
func benchmarkScheduleBatch(b *testing.B, bs int) {
	s, lbl := newBenchScheduler(b, 1, core.PerClassTryLock)
	reqs := make([]core.Request, bs)
	for i := range reqs {
		reqs[i] = core.Request{Label: lbl, Size: 1500}
	}
	out := make([]core.Decision, bs)
	b.ReportAllocs()
	for i := 0; i < b.N; i += bs {
		s.ScheduleBatch(reqs, out)
	}
}

func BenchmarkScheduleBatch1(b *testing.B)  { benchmarkScheduleBatch(b, 1) }
func BenchmarkScheduleBatch8(b *testing.B)  { benchmarkScheduleBatch(b, 8) }
func BenchmarkScheduleBatch32(b *testing.B) { benchmarkScheduleBatch(b, 32) }

// newBenchSharded builds a sharded scheduler over an 8-tenant tree (the
// fvbench -shards policy shape) so every shard count schedules the same
// work. The manual clock never advances: the benches measure the steady
// hot path (partition, ring-less inline drain, per-replica batch) without
// epoch rolls or settlements, which have their own tests.
func newBenchSharded(b *testing.B, shards int) (*core.ShardedScheduler, []*tree.Label) {
	b.Helper()
	const tenants = 8
	builder := tree.NewBuilder().Root("root", 1e15)
	for k := 0; k < tenants; k++ {
		tn := fmt.Sprintf("tenant%d", k)
		builder.Add(tree.ClassSpec{Name: tn, Parent: "root", Weight: 1})
		builder.Add(tree.ClassSpec{Name: fmt.Sprintf("t%dapp", k), Parent: tn, Weight: 1})
	}
	t, err := builder.Build()
	if err != nil {
		b.Fatal(err)
	}
	s, err := core.NewSharded(t, clock.NewManual(0), core.Config{}, core.ShardConfig{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	labels := make([]*tree.Label, tenants)
	for k := 0; k < tenants; k++ {
		lbl, ok := t.LabelByName(fmt.Sprintf("t%dapp", k))
		if !ok {
			b.Fatal("no label")
		}
		labels[k] = lbl
	}
	return s, labels
}

// benchmarkScheduleBatchSharded drives the inline (deterministic) sharded
// batch path with a 32-request burst spread over all 8 tenants: one
// counting-sort partition plus one per-shard sub-batch per iteration.
// Acceptance: zero allocations at any shard count.
func benchmarkScheduleBatchSharded(b *testing.B, shards int) {
	s, labels := newBenchSharded(b, shards)
	reqs := make([]core.Request, 32)
	for i := range reqs {
		reqs[i] = core.Request{Label: labels[i%len(labels)], Size: 1500}
	}
	out := make([]core.Decision, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i += 32 {
		s.ScheduleBatch(reqs, out)
	}
}

func BenchmarkScheduleBatch32Sharded1(b *testing.B) { benchmarkScheduleBatchSharded(b, 1) }
func BenchmarkScheduleBatch32Sharded4(b *testing.B) { benchmarkScheduleBatchSharded(b, 4) }

// BenchmarkScheduleBatch32ShardedPar measures the parallel mode: worker
// goroutines own the shards and producers feed the MPSC rings. On a
// single-CPU host this reports the feed/drain handoff cost; with more
// cores the producers and shard owners overlap.
func BenchmarkScheduleBatch32ShardedPar(b *testing.B) {
	s, labels := newBenchSharded(b, 4)
	if err := s.StartWorkers(); err != nil {
		b.Fatal(err)
	}
	defer s.StopWorkers()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			for !s.Feed(labels[i%len(labels)], 1500) {
				runtime.Gosched()
			}
			i++
		}
	})
}

// BenchmarkScheduleBatch32NoFaults guards the fault-free fast path: a
// scheduler that never saw ApplyFaults pays exactly one atomic
// nil-pointer load over BenchmarkScheduleBatch32 (acceptance: within 5%,
// zero allocations).
func BenchmarkScheduleBatch32NoFaults(b *testing.B) { benchmarkScheduleBatch(b, 32) }

// BenchmarkScheduleBatch32FaultsArmed measures the armed-but-idle cost: a
// plan is installed but its windows sit in the far future, so every epoch
// check walks the compiled window list and misses.
func BenchmarkScheduleBatch32FaultsArmed(b *testing.B) {
	s, lbl := newBenchScheduler(b, 1, core.PerClassTryLock)
	plan := &flowvalve.FaultPlan{Seed: 1, Events: []flowvalve.FaultEvent{
		{Kind: flowvalve.FaultEpochDrop, AtNs: 1 << 60, DurationNs: 1e9, Prob: 1},
		{Kind: flowvalve.FaultLockContention, AtNs: 1 << 60, DurationNs: 1e9, Prob: 1},
	}}
	if err := s.ApplyFaults(plan); err != nil {
		b.Fatal(err)
	}
	reqs := make([]core.Request, 32)
	for i := range reqs {
		reqs[i] = core.Request{Label: lbl, Size: 1500}
	}
	out := make([]core.Decision, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i += 32 {
		s.ScheduleBatch(reqs, out)
	}
}

// BenchmarkScheduleTelemetryOff / BenchmarkScheduleTelemetryOn guard the
// observability budget: an attached registry plus a 1-in-256 decision
// tracer must stay within 5% of the bare hot path (the unsampled trace
// check is one atomic-pointer load and a mask test; the per-class metric
// families are Func collectors read only at scrape time).
func BenchmarkScheduleTelemetryOff(b *testing.B) {
	s, lbl := newBenchScheduler(b, 1, core.PerClassTryLock)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(lbl, 1500)
	}
}

func BenchmarkScheduleTelemetryOn(b *testing.B) {
	s, lbl := newBenchScheduler(b, 1, core.PerClassTryLock)
	s.AttachTelemetry(telemetry.NewRegistry(), telemetry.NewTracer(256, 4096))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(lbl, 1500)
	}
}

// BenchmarkScheduleDepth sweeps tree depth: cost grows linearly with the
// hierarchy label length (§IV-C).
func BenchmarkScheduleDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			s, lbl := newBenchScheduler(b, depth, core.PerClassTryLock)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.Schedule(lbl, 1500)
			}
		})
	}
}

// BenchmarkScheduleParallel exercises FlowValve's design point (Fig 7-c):
// per-class try-locks keep many cores scheduling concurrently.
func BenchmarkScheduleParallel(b *testing.B) {
	for _, mode := range []struct {
		name string
		lock core.LockMode
	}{
		{"per-class-trylock", core.PerClassTryLock}, // Fig 7-(c): FlowValve
		{"global-lock", core.GlobalLock},            // Fig 7-(b): naive port
		{"no-lock", core.NoLock},                    // Fig 7-(a): racy
	} {
		b.Run(mode.name, func(b *testing.B) {
			s, lbl := newBenchScheduler(b, 2, mode.lock)
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					s.Schedule(lbl, 1500)
				}
			})
		})
	}
}

// BenchmarkScheduleBorrowPath measures the red-packet borrow chain: the
// leaf has no bandwidth and queries its lenders' shadow buckets.
func BenchmarkScheduleBorrowPath(b *testing.B) {
	t := tree.NewBuilder().
		Root("root", 8e9).
		Add(tree.ClassSpec{Name: "starved", Parent: "root", Weight: 0.0001, BorrowFrom: []string{"fat1", "fat2"}}).
		Add(tree.ClassSpec{Name: "fat1", Parent: "root", Weight: 1}).
		Add(tree.ClassSpec{Name: "fat2", Parent: "root", Weight: 1}).
		MustBuild()
	s, err := core.New(t, clock.NewWall(), core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	lbl, _ := t.LabelByName("starved")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(lbl, 1500)
	}
}

// BenchmarkOffloadUpdate is the offload control plane's per-packet cost
// — sketch update, top-K offer, rule-table lookup — over a realistic key
// mix: 32 offloaded elephants (fast-path hits) interleaved 1:1 with 992
// mice that never cross the threshold. Guarded by the CI gate at zero
// allocations: Observe runs once per packet on the NIC service path.
func BenchmarkOffloadUpdate(b *testing.B) {
	ctl, err := offload.New(offload.Config{
		TableCap:              64,
		InitialThresholdBytes: 4096,
		Policy:                offload.NewStatic(4096),
	})
	if err != nil {
		b.Fatal(err)
	}
	const elephants, mice = 32, 992
	// Warm the elephants onto the fast path (one outsized packet each,
	// then a control tick to drain the install queue).
	for f := 0; f < elephants; f++ {
		ctl.Observe(1, packet.FlowID(f), 8192)
	}
	ctl.Tick(1_000_000)
	if ctl.Offloaded() != elephants {
		b.Fatalf("warmup installed %d flows, want %d", ctl.Offloaded(), elephants)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i&1 == 0 {
			ctl.Observe(1, packet.FlowID(i%elephants), 1000)
		} else {
			ctl.Observe(2, packet.FlowID(i%mice), 200)
		}
	}
}

// BenchmarkClassifier measures the exact-match flow cache (hit) against
// the rule walk (miss) — the 10× gap the paper attributes to the NP
// lookup engines.
func BenchmarkClassifier(b *testing.B) {
	t := tree.NewBuilder().
		Root("root", 1e9).
		Add(tree.ClassSpec{Name: "leaf", Parent: "root"}).
		MustBuild()
	rules := make([]classifier.Rule, 0, 64)
	for i := 0; i < 64; i++ {
		rules = append(rules, classifier.Rule{App: 1000 + i, Flow: classifier.AnyFlow, Class: "leaf"})
	}
	rules = append(rules, classifier.Rule{App: classifier.AnyApp, Flow: classifier.AnyFlow, Class: "leaf"})

	b.Run("cache-hit", func(b *testing.B) {
		cls, _ := classifier.New(t, rules, "")
		p := &packet.Packet{App: 1, Flow: 1, Size: 100}
		cls.Lookup(p)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cls.Lookup(p)
		}
	})
	b.Run("cache-miss", func(b *testing.B) {
		cls, _ := classifier.New(t, rules, "")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cls.Lookup(&packet.Packet{App: 1, Flow: packet.FlowID(i), Size: 100})
		}
	})
}

// ---------------------------------------------------------------------
// Figure/table regeneration benches (scaled; full scale via cmd/fvsim).
// ---------------------------------------------------------------------

// BenchmarkFig3MotivationHTB regenerates Fig 3: kernel HTB failing the
// motivation policy. Reports the ceiling overshoot.
func BenchmarkFig3MotivationHTB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		w := experiments.Windows(res, benchScale, 4, [][2]int64{{17, 30}})
		var total float64
		for _, g := range w[0].AppGbps {
			total += g
		}
		b.ReportMetric(total, "total-Gbps")
		b.ReportMetric(res.CoresUsed, "host-cores")
	}
}

// BenchmarkFig11aMotivationFlowValve regenerates Fig 11(a).
func BenchmarkFig11aMotivationFlowValve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11a(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		w := experiments.Windows(res, benchScale, 4, [][2]int64{{17, 30}})
		b.ReportMetric(w[0].AppGbps[1], "KVS-Gbps")
		b.ReportMetric(w[0].AppGbps[2], "ML-Gbps")
		b.ReportMetric(w[0].AppGbps[3], "WS-Gbps")
	}
}

// BenchmarkFig11bFairQueueing regenerates Fig 11(b): 40G fair queueing.
func BenchmarkFig11bFairQueueing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11b(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		w := experiments.Windows(res, benchScale, 4, [][2]int64{{32, 45}})
		var total float64
		for _, g := range w[0].AppGbps {
			total += g
		}
		b.ReportMetric(total, "line-Gbps")
		b.ReportMetric(w[0].AppGbps[0], "app0-Gbps")
	}
}

// BenchmarkFig11cWeightedFQ regenerates Fig 11(c): the Fig 12 weighted
// policy.
func BenchmarkFig11cWeightedFQ(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig11c(benchScale)
		if err != nil {
			b.Fatal(err)
		}
		w := experiments.Windows(res, benchScale, 4, [][2]int64{{22, 30}})
		b.ReportMetric(w[0].AppGbps[0], "app0-Gbps")
	}
}

// BenchmarkFig13MaxThroughput regenerates the Fig 13 table rows.
func BenchmarkFig13MaxThroughput(b *testing.B) {
	for _, size := range experiments.Fig13Sizes {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.Fig13Point(size, 10e6)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rows.FlowValveMpps, "flowvalve-Mpps")
				b.ReportMetric(rows.DPDKMpps, "dpdk-Mpps")
			}
		})
	}
}

// BenchmarkFig14OneWayDelay regenerates the Fig 14 delay comparison.
func BenchmarkFig14OneWayDelay(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig14(0.05)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheduler == "FlowValve" && r.LinkGbps == 40 {
				b.ReportMetric(r.MeanUs, "fv40G-mean-µs")
				b.ReportMetric(r.StdUs, "fv40G-std-µs")
			}
		}
	}
}

// BenchmarkCPUSavings regenerates the host-CPU comparison (§V headline).
func BenchmarkCPUSavings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CPUSavings(0.05)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheduler == "DPDK QoS" {
				b.ReportMetric(r.Cores, "dpdk-cores")
			}
		}
	}
}

// BenchmarkConformance measures single-class rate conformance (§IV-D):
// reports the relative error of the admitted rate against the policy.
func BenchmarkConformance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		errPct, err := experiments.SingleClassConformance(1e9, 2e9, 1e9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(errPct*100, "conf-err-%")
	}
}

// ---------------------------------------------------------------------
// Ablations.
// ---------------------------------------------------------------------

// BenchmarkAblationUpdateInterval sweeps the epoch length: accuracy vs
// update overhead (DESIGN.md ablation).
func BenchmarkAblationUpdateInterval(b *testing.B) {
	for _, intervalUs := range []int64{10, 50, 250, 1000} {
		b.Run(fmt.Sprintf("interval=%dµs", intervalUs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				errPct, err := experiments.ConformanceWithConfig(1e9, 2e9, 1e9, core.Config{
					UpdateIntervalNs: intervalUs * 1000,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(errPct*100, "conf-err-%")
			}
		})
	}
}

// BenchmarkAblationBorrowing compares work conservation with and without
// shadow-bucket borrowing: one active app on the 40G fair-queue policy.
func BenchmarkAblationBorrowing(b *testing.B) {
	for _, borrow := range []bool{true, false} {
		name := "with-borrowing"
		if !borrow {
			name = "without-borrowing"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gbps, err := experiments.SoloAppThroughput(borrow)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(gbps, "solo-Gbps")
			}
		})
	}
}

// BenchmarkAblationFlowCache compares NIC throughput with the exact-match
// flow cache against a forced rule walk per packet.
func BenchmarkAblationFlowCache(b *testing.B) {
	for _, cached := range []bool{true, false} {
		name := "cache-on"
		if !cached {
			name = "cache-off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mpps, err := experiments.FlowCacheThroughput(cached)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(mpps, "Mpps")
			}
		})
	}
}

// BenchmarkPublicAPI measures the facade overhead a downstream user pays
// over the internal scheduler.
func BenchmarkPublicAPI(b *testing.B) {
	p, err := flowvalve.FairQueuePolicy("1000gbit", 4)
	if err != nil {
		b.Fatal(err)
	}
	s, err := flowvalve.NewScheduler(p, flowvalve.NewWallClock(), flowvalve.Options{})
	if err != nil {
		b.Fatal(err)
	}
	h, err := s.Pin(0, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Schedule(1500)
	}
}

// BenchmarkScale100G regenerates the §VI higher-line-rate projection.
func BenchmarkScale100G(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Scale100G(5e6)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[2].Mpps64, "nextgen-64B-Mpps")
	}
}

// BenchmarkAblationExpiry sweeps the expired-status-removal threshold
// (§IV-C subprocedure 3): with a long threshold, stale Γ starves the
// residual class long after the prior flow stopped.
func BenchmarkAblationExpiry(b *testing.B) {
	for _, ms := range []int64{10, 50, 500} {
		b.Run(fmt.Sprintf("expiry=%dms", ms), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rec, err := experiments.ExpiryRecovery(ms * 1e6)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rec, "recovery-ms")
			}
		})
	}
}

// BenchmarkAblationThreads sweeps hardware thread contexts per
// micro-engine: memory-stall hiding is what makes the NP's packet rate
// compute-bound (§III-B).
func BenchmarkAblationThreads(b *testing.B) {
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mpps, err := experiments.ThreadSweepPoint(threads, 10e6)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(mpps, "Mpps")
			}
		})
	}
}
