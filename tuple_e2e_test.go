package flowvalve

import "testing"

// End-to-end header-based classification: the policy classifies by
// destination port and source subnet (u32-style matches) instead of VF
// metadata, exercising the header synthesis → P4-lite parser →
// match-action table path through the whole simulation.
func TestTupleFilterEndToEnd(t *testing.T) {
	// App n's flows target port 5201+n from subnet 10.0.n.0/24 (see
	// packet.TupleFor). Classify app 0 by port, app 1 by subnet.
	p, err := ParsePolicy(`
fv qdisc add dev nfp0 root handle 1: htb rate 10gbit
fv class add dev nfp0 parent 1: classid 1:10 htb weight 3
fv class add dev nfp0 parent 1: classid 1:20 htb weight 1
fv filter add dev nfp0 parent 1: protocol ip u32 match ip dport 5201 0xffff flowid 1:10
fv filter add dev nfp0 parent 1: u32 match ip src 10.0.1.0/24 match ip protocol tcp flowid 1:20
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Scenario{
		Policy:      p,
		DurationSec: 3,
		Apps: []AppTraffic{
			{App: 0, Conns: 2},
			{App: 1, Conns: 2},
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	a0 := res.AppGbps(0, 1, 3)
	a1 := res.AppGbps(1, 1, 3)
	// 3:1 split of ≈9.84G usable.
	if a0 < 6.3 || a0 > 8.2 {
		t.Errorf("port-classified app0 = %.2fG, want ≈7.4 (3/4 share)", a0)
	}
	if a1 < 2.0 || a1 > 2.9 {
		t.Errorf("subnet-classified app1 = %.2fG, want ≈2.5 (1/4 share)", a1)
	}
}

// A drop-by-filter policy: traffic that matches no filter and has no
// default class is discarded by the pipeline.
func TestUnmatchedTrafficDroppedEndToEnd(t *testing.T) {
	p, err := ParsePolicy(`
fv qdisc add dev nfp0 root handle 1: htb rate 10gbit
fv class add dev nfp0 parent 1: classid 1:10
fv filter add dev nfp0 parent 1: u32 match ip dport 5201 0xffff flowid 1:10
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Scenario{
		Policy:      p,
		DurationSec: 1,
		Apps: []AppTraffic{
			{App: 0, Conns: 1}, // dport 5201 → classified
			{App: 5, Conns: 1}, // dport 5206 → unmatched, dropped
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	if g := res.AppGbps(0, 0.2, 1); g < 5 {
		t.Errorf("classified app0 = %.2fG, want most of the link", g)
	}
	if g := res.AppGbps(5, 0.2, 1); g > 0.01 {
		t.Errorf("unmatched app5 delivered %.3fG, want 0", g)
	}
}
