# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# commands.

GO ?= go

.PHONY: all build vet test race chaos chaos-shards chaos-offload bench bench-figures bench-json bench-gate bench-procs reproduce lint test-fvassert

all: build vet test

# Static invariant checks: go vet plus the fvlint analyzer suite —
# five per-package analyzers (detnow, lockconv, atomicmix, hotpath,
# metricname) and three module-wide ones on the interprocedural hot
# closure (boxing, shardown, lockorder) — see internal/analysis and
# DESIGN.md §11 — over both tag sets, so the fvassert-only file pair
# is linted too. Zero unsuppressed diagnostics is the contract;
# suppressions are //fv: annotations with mandatory justifications.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/fvlint ./...
	$(GO) run ./cmd/fvlint -tags fvassert ./...

# Full test suite with the runtime assertion layer (internal/fvassert)
# compiled in: token conservation, FIFO occupancy, cache geometry, and
# event-causality invariants all panic on violation instead of
# corrupting results silently.
test-fvassert:
	$(GO) test -tags fvassert ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race detector on the surfaces that run under real goroutine
# concurrency: the scheduling function, the NIC model, the concurrent
# flow cache, the tracer, and the facade.
race:
	$(GO) test -race ./internal/core/ ./internal/nic/ ./internal/classifier/ ./internal/telemetry/ .

# Chaos soak: randomized fault plans (fixed seed matrix) through the full
# FlowValve stack under -race, asserting conformance/recovery/liveness.
chaos:
	$(GO) test -race -run Chaos -v ./internal/experiments/

# Sharded parallel soak under -race: worker goroutines own the shards,
# producers hammer the MPSC feed rings, and the chaos fault plan stays
# armed (lock contention on shard1, epoch faults elsewhere) while token
# conservation is asserted at every settlement.
chaos-shards:
	$(GO) test -race -tags fvassert -run 'ShardedParallelChaosSoak|FeedRingMPSC' -v ./internal/core/

# Offload-churn soak: randomized fault plans armed while mouse-flow
# churn hammers the offload control plane's install queue, with the
# fvassert invariants (rule-table capacity, install-queue bounds)
# compiled in.
chaos-offload:
	$(GO) test -race -tags fvassert -run 'ChaosOffloadChurn' -v ./internal/experiments/

# Scheduling hot-path microbenchmarks (per-packet, batched, telemetry,
# depth, parallel lock modes) plus the classification hot path
# (BenchmarkClassifyHit guards the lock-free, zero-alloc flow-cache hit),
# benchstat-friendly: 5 repetitions each.
#   make bench > new.txt   # then: benchstat old.txt new.txt
bench:
	$(GO) test -run '^$$' -bench '^BenchmarkSchedule' -benchmem -count=5 .
	$(GO) test -run '^$$' -bench '^BenchmarkClassify' -benchmem -count=5 ./internal/classifier/

# Scaled figure/table regeneration benches + ablations.
bench-figures:
	$(GO) test -run '^$$' -bench . -benchmem .

# The benches guarded by the CI regression gate: the core batched hot
# path (plain, sharded inline, sharded parallel), the pifo scheduler
# family, the offload control plane's per-packet Observe path, and the
# scheduled slow path's per-packet admission.
# bench-json refreshes the committed baseline (run it on the reference
# machine when a deliberate perf change lands; on a noisy shared
# machine, capture $(BENCH_GATE) several times and emit from a merge
# that keeps each benchmark's slowest capture, so the baseline's
# best-of-N spans the noise band); bench-gate fails when any guarded
# benchmark's best-of-N ns/op regresses more than 15% past the
# baseline, or allocates at all (cmd/fvbenchstat -max-allocs 0 — the
# hot-path zero-allocation contract).
BENCH_GATE = $(GO) test -run '^$$' -bench 'ScheduleBatch32|OffloadUpdate|SlowPathEnqueue' -benchmem -count=5 . ./internal/pifo/ ./internal/nic/

bench-json:
	$(BENCH_GATE) | $(GO) run ./cmd/fvbenchstat -emit BENCH_pr10.json

bench-gate:
	$(BENCH_GATE) | $(GO) run ./cmd/fvbenchstat -baseline BENCH_pr10.json -match 'ScheduleBatch32|OffloadUpdate|SlowPathEnqueue' -threshold 0.12 -max-allocs 0

# Parallel scaling matrix: the fvbench wall-clock mode at increasing
# -procs (shards + producers). On a multi-core host throughput should
# scale toward linear; on a single core it demonstrates the sharded
# path adds no overhead.
bench-procs:
	@for p in 1 2 4 8; do $(GO) run ./cmd/fvbench -procs $$p -duration 2s; done

# Full-scale reproduction of the paper's evaluation.
reproduce:
	$(GO) run ./cmd/fvsim -experiment all
