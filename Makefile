# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# commands.

GO ?= go

.PHONY: all build vet test race chaos bench bench-figures reproduce

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race detector on the surfaces that run under real goroutine
# concurrency: the scheduling function, the NIC model, the concurrent
# flow cache, the tracer, and the facade.
race:
	$(GO) test -race ./internal/core/ ./internal/nic/ ./internal/classifier/ ./internal/telemetry/ .

# Chaos soak: randomized fault plans (fixed seed matrix) through the full
# FlowValve stack under -race, asserting conformance/recovery/liveness.
chaos:
	$(GO) test -race -run Chaos -v ./internal/experiments/

# Scheduling hot-path microbenchmarks (per-packet, batched, telemetry,
# depth, parallel lock modes) plus the classification hot path
# (BenchmarkClassifyHit guards the lock-free, zero-alloc flow-cache hit),
# benchstat-friendly: 5 repetitions each.
#   make bench > new.txt   # then: benchstat old.txt new.txt
bench:
	$(GO) test -run '^$$' -bench '^BenchmarkSchedule' -benchmem -count=5 .
	$(GO) test -run '^$$' -bench '^BenchmarkClassify' -benchmem -count=5 ./internal/classifier/

# Scaled figure/table regeneration benches + ablations.
bench-figures:
	$(GO) test -run '^$$' -bench . -benchmem .

# Full-scale reproduction of the paper's evaluation.
reproduce:
	$(GO) run ./cmd/fvsim -experiment all
