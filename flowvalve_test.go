package flowvalve

import (
	"strings"
	"sync"
	"testing"
)

func TestParsePolicyAndDescribe(t *testing.T) {
	p, err := ParsePolicy(`
qdisc add dev nfp0 root handle 1: htb rate 1gbit default 1:2
class add dev nfp0 parent 1: classid 1:1 prio 0
class add dev nfp0 parent 1: classid 1:2 prio 1
filter add dev nfp0 parent 1: app 0 flowid 1:1
`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Describe(), "qdisc 1:") {
		t.Fatal("Describe missing qdisc line")
	}
	classes := p.Classes()
	if len(classes) != 3 || classes[0] != "1:" {
		t.Fatalf("Classes() = %v", classes)
	}
}

func TestParsePolicyError(t *testing.T) {
	if _, err := ParsePolicy("garbage"); err == nil {
		t.Fatal("garbage policy accepted")
	}
}

func TestMotivationPolicyCompiles(t *testing.T) {
	p := MotivationPolicy()
	if len(p.Classes()) != 7 {
		t.Fatalf("motivation policy has %d classes, want 7", len(p.Classes()))
	}
}

func TestFairQueuePolicy(t *testing.T) {
	p, err := FairQueuePolicy("40gbit", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Classes()) != 5 {
		t.Fatalf("fair queue policy has %d classes, want 5", len(p.Classes()))
	}
}

func TestSchedulerScheduleAndStats(t *testing.T) {
	p := MotivationPolicy()
	s, err := NewScheduler(p, NewWallClock(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := s.Schedule(0, 1, 1500) // app 0 = NC
	if d.Verdict != Forward {
		t.Fatalf("first NC packet = %v, want forward", d.Verdict)
	}
	if d.Class != "1:1" {
		t.Fatalf("classified to %q, want 1:1", d.Class)
	}
	var fwd int64
	for _, st := range s.Stats() {
		fwd += st.FwdPkts
	}
	if fwd != 1 {
		t.Fatalf("stats count %d forwarded, want 1", fwd)
	}
}

func TestSchedulerDefaultClass(t *testing.T) {
	p := MotivationPolicy()
	s, err := NewScheduler(p, NewWallClock(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := s.Schedule(77, 1, 100) // unmatched app → default 1:30
	if d.Class != "1:30" {
		t.Fatalf("unmatched app classified to %q, want default 1:30", d.Class)
	}
}

func TestNewSchedulerNilPolicy(t *testing.T) {
	if _, err := NewScheduler(nil, NewWallClock(), Options{}); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestNewSchedulerNilClockDefaultsToWall(t *testing.T) {
	s, err := NewScheduler(MotivationPolicy(), nil, Options{})
	if err != nil || s == nil {
		t.Fatalf("nil clock should default to wall: %v", err)
	}
}

func TestPinConcurrentSchedule(t *testing.T) {
	p, err := FairQueuePolicy("8gbit", 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(p, NewWallClock(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*FlowHandle, 4)
	for app := range handles {
		h, err := s.Pin(uint32(app), uint32(app))
		if err != nil {
			t.Fatal(err)
		}
		if h.Class() == "" {
			t.Fatal("pinned handle has no class")
		}
		handles[app] = h
	}
	var wg sync.WaitGroup
	for _, h := range handles {
		h := h
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				if v := h.Schedule(1500).Verdict; v != Forward && v != Drop {
					t.Errorf("invalid verdict %v", v)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPinUnmatchedFlowErrors(t *testing.T) {
	p, err := ParsePolicy(`
qdisc add dev nfp0 root handle 1: htb rate 1gbit
class add dev nfp0 parent 1: classid 1:1
filter add dev nfp0 parent 1: app 0 flowid 1:1
`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(p, NewWallClock(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Pin(99, 0); err == nil {
		t.Fatal("pin of unmatched flow without default succeeded")
	}
	if d := s.Schedule(99, 0, 100); d.Verdict != Unclassified {
		t.Fatalf("unmatched packet verdict = %v, want unclassified", d.Verdict)
	}
}

func TestVerdictStrings(t *testing.T) {
	for v, want := range map[Verdict]string{
		Forward: "forward", Drop: "drop", Unclassified: "unclassified", Verdict(0): "invalid",
	} {
		if v.String() != want {
			t.Fatalf("%d.String() = %q", v, v.String())
		}
	}
}

// The simulation facade: a tiny fair-queueing run producing sane shares.
func TestScenarioRun(t *testing.T) {
	policy, err := FairQueuePolicy("40gbit", 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Scenario{
		Policy:      policy,
		DurationSec: 2,
		Apps: []AppTraffic{
			{App: 0, Conns: 2},
			{App: 1, Conns: 2},
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	a0 := res.AppGbps(0, 0.5, 2)
	a1 := res.AppGbps(1, 0.5, 2)
	if a0 < 12 || a1 < 12 {
		t.Fatalf("two-way split %.1f/%.1f, want ≈19 each", a0, a1)
	}
	if total := res.TotalGbps(0.5, 2); total < 30 {
		t.Fatalf("total %.1fG, want ≈39", total)
	}
	if len(res.Series(0)) == 0 {
		t.Fatal("empty series")
	}
	if sched, _ := res.SchedDrops(); sched == 0 {
		t.Fatal("saturating TCP should see scheduling drops")
	}
}

func TestScenarioLatency(t *testing.T) {
	policy, err := FairQueuePolicy("10gbit", 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Scenario{
		Policy:         policy,
		DurationSec:    0.5,
		MeasureLatency: true,
		SegBytes:       1518,
		Apps:           []AppTraffic{{App: 0, Conns: 2}},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	mean, _, p99 := res.Latency()
	if mean <= 0 || p99 < mean {
		t.Fatalf("latency stats implausible: mean=%g p99=%g", mean, p99)
	}
}

func TestScenarioRequiresApps(t *testing.T) {
	policy, err := FairQueuePolicy("10gbit", 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (Scenario{Policy: policy, DurationSec: 1, Apps: []AppTraffic{{App: 0}}}).Run(); err == nil {
		t.Fatal("app without connections accepted")
	}
}

// Runtime policy replacement: after Swap, packets are scheduled under the
// new tree; handles pinned before the swap keep the old generation.
func TestPolicySwap(t *testing.T) {
	p1, err := ParsePolicy(`
qdisc add dev x root handle 1: htb rate 1gbit
class add dev x parent 1: classid 1:1
filter add dev x app 0 flowid 1:1
`)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(p1, NewWallClock(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	oldHandle, err := s.Pin(0, 1)
	if err != nil {
		t.Fatal(err)
	}

	p2, err := ParsePolicy(`
qdisc add dev x root handle 9: htb rate 2gbit
class add dev x parent 9: classid 9:5
filter add dev x app 0 flowid 9:5
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Swap(p2); err != nil {
		t.Fatal(err)
	}
	if s.Policy() != p2 {
		t.Fatal("Policy() did not switch")
	}
	if d := s.Schedule(0, 2, 100); d.Class != "9:5" {
		t.Fatalf("post-swap classification = %q, want 9:5", d.Class)
	}
	// The pre-swap handle still works against the old generation.
	if d := oldHandle.Schedule(100); d.Class != "1:1" {
		t.Fatalf("old handle class = %q, want 1:1", d.Class)
	}
	if err := s.Swap(nil); err == nil {
		t.Fatal("Swap(nil) accepted")
	}
}

// Swap is safe while other goroutines schedule.
func TestPolicySwapConcurrent(t *testing.T) {
	p, err := FairQueuePolicy("8gbit", 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewScheduler(p, NewWallClock(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			p2, err := FairQueuePolicy("8gbit", 4)
			if err != nil {
				t.Error(err)
				return
			}
			if err := s.Swap(p2); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 20_000; i++ {
		if v := s.Schedule(uint32(i%4), uint32(i%4), 1500).Verdict; v != Forward && v != Drop {
			t.Fatalf("invalid verdict %v", v)
		}
	}
	<-done
}
