package flowvalve

import (
	"flowvalve/internal/faults"
)

// This file exposes the fault-injection subsystem (internal/faults)
// through the public API: parse or generate a deterministic fault plan,
// then hand it to Options.Faults (embedded scheduler) or Scenario.Faults
// (discrete-event simulation). All fault draws are seeded, so a plan
// replays identically run after run.

// FaultKind names one injectable fault family.
type FaultKind = faults.Kind

// The injectable fault kinds. NIC-scoped kinds (core stalls, cache
// flushes, ring overflow) only take effect in the simulation — an
// embedded Scheduler has no NIC model to wound; scheduler-scoped kinds
// (lock contention, epoch drop/delay) and clock jitter apply to both.
const (
	FaultCoreStall      = faults.KindCoreStall
	FaultCacheFlush     = faults.KindCacheFlush
	FaultRxOverflow     = faults.KindRxOverflow
	FaultClockJitter    = faults.KindClockJitter
	FaultLockContention = faults.KindLockContention
	FaultEpochDrop      = faults.KindEpochDrop
	FaultEpochDelay     = faults.KindEpochDelay
)

// FaultEvent is one timed fault in a plan.
type FaultEvent = faults.Event

// FaultPlan is a deterministic, seeded schedule of fault events.
type FaultPlan = faults.Plan

// ParseFaultPlan decodes a JSON fault plan and validates it. The format:
//
//	{
//	  "seed": 7,
//	  "events": [
//	    {"kind": "core-stall", "at_ns": 1000000000, "duration_ns": 300000000, "cores": 16},
//	    {"kind": "epoch-drop", "at_ns": 1200000000, "duration_ns": 400000000, "prob": 1}
//	  ]
//	}
func ParseFaultPlan(data []byte) (*FaultPlan, error) {
	return faults.ParsePlan(data)
}

// LoadFaultPlan reads and validates a JSON fault plan file.
func LoadFaultPlan(path string) (*FaultPlan, error) {
	return faults.LoadPlan(path)
}

// RandomFaultPlan generates a seeded plan with one event of every fault
// family inside [fromNs, toNs) — the chaos-soak generator.
func RandomFaultPlan(seed uint64, fromNs, toNs int64) *FaultPlan {
	return faults.RandomPlan(seed, fromNs, toNs)
}
