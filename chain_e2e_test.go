package flowvalve

import "testing"

// End-to-end qdisc chaining (§III-E): a PRIO qdisc grafted under an HTB
// class enforces strict priority inside that class's share while the
// outer weighted split is untouched.
func TestChainedQdiscEndToEnd(t *testing.T) {
	p, err := ParsePolicy(`
fv qdisc add dev nfp0 root handle 1: htb rate 9gbit default 1:20
fv class add dev nfp0 parent 1: classid 1:10 htb weight 2
fv class add dev nfp0 parent 1: classid 1:20 htb weight 1
fv qdisc add dev nfp0 parent 1:10 handle 2: prio bands 2
fv filter add dev nfp0 parent 2: app 0 flowid 2:1
fv filter add dev nfp0 parent 2: app 1 flowid 2:2
fv filter add dev nfp0 parent 1: app 2 flowid 1:20
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Scenario{
		Policy:      p,
		DurationSec: 4,
		Apps: []AppTraffic{
			{App: 0, Conns: 2}, // band 2:1 — prior inside tenant A
			{App: 1, Conns: 2}, // band 2:2
			{App: 2, Conns: 2}, // tenant B
		},
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	rpc := res.AppGbps(0, 1, 4)
	bulk := res.AppGbps(1, 1, 4)
	tenB := res.AppGbps(2, 1, 4)

	// Outer split 2:1 of ≈8.85G usable: tenant A ≈5.9, tenant B ≈2.95.
	if a := rpc + bulk; a < 5.0 || a > 6.5 {
		t.Errorf("tenant A total = %.2fG, want ≈5.9", a)
	}
	if tenB < 2.4 || tenB > 3.5 {
		t.Errorf("tenant B = %.2fG, want ≈2.95", tenB)
	}
	// Inner strict priority: the prior band takes nearly all of A's
	// share.
	if rpc < 4.5 {
		t.Errorf("prior band = %.2fG, want ≈5.9 (strict priority in the chain)", rpc)
	}
	if bulk > 1.2 {
		t.Errorf("low band = %.2fG, want ≈0 while the prior band saturates", bulk)
	}
}
