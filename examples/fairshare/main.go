// Fairshare runs FlowValve's 40Gbps fair-queueing experiment (the
// paper's Fig 11(b)): four applications of four TCP connections each join
// a 4-way equal-share policy at 0/10/20/30s. Shadow-bucket borrowing
// keeps the link at line rate whatever the number of active apps:
// 40 → 20/20 → 13.3×3 → 10×4.
package main

import (
	"fmt"
	"log"

	"flowvalve"
)

func main() {
	policy, err := flowvalve.FairQueuePolicy("40gbit", 4)
	if err != nil {
		log.Fatal(err)
	}

	res, err := flowvalve.Scenario{
		Policy:      policy,
		DurationSec: 45,
		WireGbps:    40,
		WirePorts:   4,
		Apps: []flowvalve.AppTraffic{
			{App: 0, Conns: 4, StartSec: 0},
			{App: 1, Conns: 4, StartSec: 10},
			{App: 2, Conns: 4, StartSec: 20},
			{App: 3, Conns: 4, StartSec: 30},
		},
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("40G fair queueing — mean Gbps per phase:")
	phases := []struct {
		label    string
		from, to float64
		want     string
	}{
		{"1 app ", 2, 10, "≈40"},
		{"2 apps", 12, 20, "≈20 each"},
		{"3 apps", 22, 30, "≈13.3 each"},
		{"4 apps", 32, 45, "≈10 each"},
	}
	for _, ph := range phases {
		fmt.Printf("  %s:", ph.label)
		for app := 0; app < 4; app++ {
			fmt.Printf(" %6.2f", res.AppGbps(app, ph.from, ph.to))
		}
		fmt.Printf("   total %6.2f  (paper: %s)\n", res.TotalGbps(ph.from, ph.to), ph.want)
	}

	// ASCII sparkline of App0's share over time: full link alone,
	// halving as peers join.
	fmt.Println("\nApp0 Gbps over time:")
	series := res.Series(0)
	for i := 0; i < len(series); i += 2 {
		bar := int(series[i] / 40 * 60)
		if bar < 0 {
			bar = 0
		}
		fmt.Printf("  %4.1fs %5.1fG |%s\n", float64(i)*0.45, series[i], repeat('#', bar))
	}
}

func repeat(ch byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}
