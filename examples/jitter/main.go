// Jitter examines FlowValve's one-way delay behaviour (the paper's
// Fig 14 and §V-B discussion): at a 10Gbps policy the NIC path is nearly
// empty and delay is minimal; at the full 40Gbps line rate the delay
// floor rises to ≈160µs (traffic-manager occupancy ahead of the wire
// bottleneck) but the *variation* stays small — which is what makes the
// egress pattern predictable enough for jitter-sensitive traffic such as
// video.
package main

import (
	"fmt"
	"log"

	"flowvalve"
)

func main() {
	fmt.Println("One-way delay under fair queueing, 4 apps × 4 TCP connections:")
	fmt.Printf("%8s %12s %12s %12s\n", "policy", "mean(µs)", "std(µs)", "p99(µs)")
	for _, gbps := range []int{10, 40} {
		policy, err := flowvalve.FairQueuePolicy(fmt.Sprintf("%dgbit", gbps), 4)
		if err != nil {
			log.Fatal(err)
		}
		res, err := flowvalve.Scenario{
			Policy:         policy,
			DurationSec:    2,
			WireGbps:       40, // the wire is always the 40GbE NIC
			WirePorts:      4,
			SegBytes:       1518, // wire-sized frames for per-packet delay
			MeasureLatency: true,
			Apps: []flowvalve.AppTraffic{
				{App: 0, Conns: 4}, {App: 1, Conns: 4},
				{App: 2, Conns: 4}, {App: 3, Conns: 4},
			},
		}.Run()
		if err != nil {
			log.Fatal(err)
		}
		mean, std, p99 := res.Latency()
		fmt.Printf("%6dG %12.1f %12.1f %12.1f\n", gbps, mean, std, p99)
	}
	fmt.Println("\npaper: lowest delay at 10G; ≈4× higher at 40G (≈161µs floor) with near-zero variation")
}
