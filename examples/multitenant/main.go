// Multitenant reproduces the paper's motivation example (§II, Fig 2) on
// the simulated SmartNIC: a network controller (NC), a key-value store
// (KVS), a machine-learning service (ML), and a web server (WS) share a
// 10Gbps egress under the hierarchy
//
//	NC strictly prior · vm1(KVS,ML) : vm2(WS) = 2:1 ·
//	KVS prior to ML · ML guaranteed 2Gbps
//
// NC stops at 15s and WS at 30s, showing FlowValve redistributing
// bandwidth per policy at each transition (the paper's Fig 11(a)).
package main

import (
	"fmt"
	"log"

	"flowvalve"
)

func main() {
	policy := flowvalve.MotivationPolicy()
	fmt.Println("Policy:")
	fmt.Print(policy.Describe())

	res, err := flowvalve.Scenario{
		Policy:      policy,
		DurationSec: 45,
		WireGbps:    40, // the wire is the 40GbE card; 10G is the policy
		WirePorts:   4,
		Apps: []flowvalve.AppTraffic{
			{App: 0, Conns: 1, StopSec: 15}, // NC
			{App: 1, Conns: 1},              // KVS
			{App: 2, Conns: 1},              // ML
			{App: 3, Conns: 1, StopSec: 30}, // WS
		},
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	names := []string{"NC", "KVS", "ML", "WS"}
	fmt.Println("\nMean Gbps per phase (paper targets in parentheses):")
	type phase struct {
		label    string
		from, to float64
		targets  []string
	}
	for _, ph := range []phase{
		{"all active, NC prior    ", 2, 15, []string{"≈9.5", "→0", "→0", "→0"}},
		{"NC stopped              ", 17, 30, []string{"0", "4.67", "2.00", "3.33"}},
		{"WS stopped, KVS borrows ", 32, 45, []string{"0", "8.00", "2.00", "0"}},
	} {
		fmt.Printf("  %s", ph.label)
		for app, name := range names {
			fmt.Printf("  %s=%5.2f(%s)", name, res.AppGbps(app, ph.from, ph.to), ph.targets[app])
		}
		fmt.Printf("  total=%5.2f\n", res.TotalGbps(ph.from, ph.to))
	}

	sched, overflow := res.SchedDrops()
	fmt.Printf("\nDrops: %d by the scheduling function (intended), %d by buffer overflow\n",
		sched, overflow)
}
