// Chained demonstrates offloaded qdisc chaining (§III-E): a strict-
// priority PRIO qdisc grafted under one class of an HTB hierarchy, all
// compiled into a single on-NIC scheduling tree. Tenant A owns 2/3 of a
// 9Gbps link and runs a latency-critical RPC service (band 2:1) above a
// bulk backup job (band 2:3); tenant B takes the remaining third.
package main

import (
	"fmt"
	"log"

	"flowvalve"
)

const policy = `
fv qdisc add dev nfp0 root handle 1: htb rate 9gbit default 1:20
fv class add dev nfp0 parent 1: classid 1:10 htb weight 2                 # tenant A
fv class add dev nfp0 parent 1: classid 1:20 htb weight 1 borrow 1:10     # tenant B
fv qdisc add dev nfp0 parent 1:10 handle 2: prio bands 3                  # chained PRIO
fv filter add dev nfp0 parent 2: app 0 flowid 2:1                         # A: RPC (prior)
fv filter add dev nfp0 parent 2: app 1 flowid 2:3                         # A: backup
fv filter add dev nfp0 parent 1: app 2 flowid 1:20                        # B
`

func main() {
	p, err := flowvalve.ParsePolicy(policy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Compiled chain (one scheduling tree):")
	fmt.Print(p.Describe())

	res, err := flowvalve.Scenario{
		Policy:      p,
		DurationSec: 12,
		Apps: []flowvalve.AppTraffic{
			{App: 0, Conns: 2, StartSec: 4, StopSec: 8}, // RPC bursts mid-run
			{App: 1, Conns: 2},                          // backup always on
			{App: 2, Conns: 2},                          // tenant B always on
		},
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nMean Gbps (HTB split 2:1, PRIO inside tenant A):")
	rows := []struct {
		label    string
		from, to float64
	}{
		{"backup alone in A ", 1, 4},
		{"RPC preempts      ", 5, 8},
		{"backup recovers   ", 9, 12},
	}
	for _, r := range rows {
		fmt.Printf("  %s RPC=%5.2f backup=%5.2f tenantB=%5.2f\n", r.label,
			res.AppGbps(0, r.from, r.to), res.AppGbps(1, r.from, r.to), res.AppGbps(2, r.from, r.to))
	}
	fmt.Println("\nWhile the RPC service bursts, the chained PRIO band preempts the")
	fmt.Println("backup inside tenant A's 6G share; tenant B's 3G is never touched.")
}
