// Quickstart: compile a QoS policy from an fv script, instantiate the
// FlowValve scheduling function under the wall clock, and drive it from
// concurrent goroutines — the software analogue of NP micro-engines each
// running the run-to-completion worker routine.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"flowvalve"
)

const policyScript = `
# Two tenants share 1Gbps 3:1; the control channel is strictly prior.
fv qdisc add dev nfp0 root handle 1: htb rate 1gbit default 1:20
fv class add dev nfp0 parent 1: classid 1:1  htb prio 0                 # control
fv class add dev nfp0 parent 1: classid 1:5  htb prio 1                 # tenants
fv class add dev nfp0 parent 1:5 classid 1:10 htb weight 3 borrow 1:20  # tenant A
fv class add dev nfp0 parent 1:5 classid 1:20 htb weight 1 borrow 1:10  # tenant B
fv filter add dev nfp0 parent 1: app 0 flowid 1:1
fv filter add dev nfp0 parent 1: app 1 flowid 1:10
fv filter add dev nfp0 parent 1: app 2 flowid 1:20
`

func main() {
	policy, err := flowvalve.ParsePolicy(policyScript)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Compiled policy:")
	fmt.Print(policy.Describe())

	sched, err := flowvalve.NewScheduler(policy, flowvalve.NewWallClock(), flowvalve.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Pin one flow per app; pinned handles are safe for concurrent use.
	handles := make([]*flowvalve.FlowHandle, 3)
	for app := range handles {
		h, err := sched.Pin(uint32(app), uint32(100+app))
		if err != nil {
			log.Fatal(err)
		}
		handles[app] = h
	}

	// Offer ~3× the link from every app for 200ms and watch the policy
	// shape the admissions.
	var wg sync.WaitGroup
	admitted := make([]int64, 3)
	deadline := time.Now().Add(200 * time.Millisecond)
	for app, h := range handles {
		app, h := app, h
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				for i := 0; i < 64; i++ {
					if d := h.Schedule(1500); d.Verdict == flowvalve.Forward {
						admitted[app] += 1500
					}
				}
				time.Sleep(300 * time.Microsecond) // ≈3×1Gbps offered per app
			}
		}()
	}
	wg.Wait()

	fmt.Println("\nAdmitted over 200ms (policy: control first, then A:B = 3:1):")
	names := []string{"control", "tenant A", "tenant B"}
	for app, bytes := range admitted {
		fmt.Printf("  %-9s %7.1f Mbit/s (class %s)\n", names[app],
			float64(bytes)*8/0.2/1e6, handles[app].Class())
	}

	fmt.Println("\nPer-class view:")
	for _, st := range sched.Stats() {
		if st.FwdPkts == 0 && st.DropPkts == 0 {
			continue
		}
		fmt.Printf("  %-5s θ=%7.1fMbit/s Γ=%7.1fMbit/s fwd=%6d drop=%6d borrowed=%d\n",
			st.Class, st.ThetaBps/1e6, st.GammaBps/1e6, st.FwdPkts, st.DropPkts, st.BorrowPkts)
	}
}
