package flowvalve

import "testing"

// The mark-on-red extension: red packets carry a congestion signal
// instead of being dropped. Shares still follow the policy (marks are
// issued exactly where drops would be), while the loss rate collapses.
func TestECNMarkingExtension(t *testing.T) {
	policy, err := ParsePolicy(`
qdisc add dev x root handle 1: htb rate 10gbit
class add dev x parent 1: classid 1:10 weight 3
class add dev x parent 1: classid 1:20 weight 1
filter add dev x app 0 flowid 1:10
filter add dev x app 1 flowid 1:20
`)
	if err != nil {
		t.Fatal(err)
	}
	run := func(ecn bool) (a0, a1 float64, drops uint64) {
		res, err := Scenario{
			Policy:      policy,
			DurationSec: 3,
			ECN:         ecn,
			Apps: []AppTraffic{
				{App: 0, Conns: 2},
				{App: 1, Conns: 2},
			},
		}.Run()
		if err != nil {
			t.Fatal(err)
		}
		sched, overflow := res.SchedDrops()
		return res.AppGbps(0, 1, 3), res.AppGbps(1, 1, 3), sched + overflow
	}

	dropA0, dropA1, dropDrops := run(false)
	ecnA0, ecnA1, ecnDrops := run(true)

	// Policy shares hold in both modes: 3:1 of ≈9.84G.
	for _, tc := range []struct {
		name   string
		a0, a1 float64
	}{
		{"drop mode", dropA0, dropA1},
		{"ecn mode", ecnA0, ecnA1},
	} {
		ratio := tc.a0 / tc.a1
		if ratio < 2.2 || ratio > 4.2 {
			t.Errorf("%s: split %.2f/%.2f (ratio %.2f), want ≈3:1", tc.name, tc.a0, tc.a1, ratio)
		}
		if total := tc.a0 + tc.a1; total < 8.5 || total > 11.5 {
			t.Errorf("%s: total %.2fG, want ≈10G policy", tc.name, total)
		}
	}
	// ECN mode nearly eliminates packet loss.
	if dropDrops == 0 {
		t.Fatal("drop mode saw no drops — test is not exercising overload")
	}
	if ecnDrops > dropDrops/10 {
		t.Errorf("ECN mode dropped %d packets vs %d in drop mode — marking should collapse loss",
			ecnDrops, dropDrops)
	}
}
