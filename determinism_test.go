package flowvalve

import (
	"math"
	"testing"
	"testing/quick"

	"flowvalve/internal/experiments"
)

// The discrete-event substrate is deterministic: two runs of the same
// scenario produce identical series — the property that makes every
// figure in EXPERIMENTS.md exactly regenerable.
func TestScenarioDeterministic(t *testing.T) {
	build := func() Scenario {
		policy, err := FairQueuePolicy("40gbit", 4)
		if err != nil {
			t.Fatal(err)
		}
		return Scenario{
			Policy:      policy,
			DurationSec: 2,
			Apps: []AppTraffic{
				{App: 0, Conns: 3},
				{App: 1, Conns: 2, StartSec: 0.5},
				{App: 2, Conns: 1, StartSec: 1, StopSec: 1.5},
			},
		}
	}
	r1, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := build().Run()
	if err != nil {
		t.Fatal(err)
	}
	for app := 0; app < 3; app++ {
		s1, s2 := r1.Series(app), r2.Series(app)
		if len(s1) != len(s2) {
			t.Fatalf("app %d series lengths differ: %d vs %d", app, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("app %d bin %d differs: %v vs %v", app, i, s1[i], s2[i])
			}
		}
	}
	d1s, d1o := r1.SchedDrops()
	d2s, d2o := r2.SchedDrops()
	if d1s != d2s || d1o != d2o {
		t.Fatalf("drop counts differ: (%d,%d) vs (%d,%d)", d1s, d1o, d2s, d2o)
	}
}

// The batched Rx service path must be just as deterministic as the
// per-packet one: two runs of the Fig 11(b) fair-queueing scenario with
// an 8-packet NIC service batch produce identical per-app series and
// qdisc counters.
func TestBatchedScenarioDeterministic(t *testing.T) {
	run := func() (*experiments.Result, error) {
		return experiments.Fig11b(0.05, experiments.WithNICBatch(8))
	}
	r1, err := run()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := run()
	if err != nil {
		t.Fatal(err)
	}
	for app := 0; app < 4; app++ {
		s1 := r1.Meter.Series(experiments.AppSeries(app))
		s2 := r2.Meter.Series(experiments.AppSeries(app))
		if len(s1) != len(s2) {
			t.Fatalf("app %d series lengths differ: %d vs %d", app, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("app %d bin %d differs: %v vs %v", app, i, s1[i], s2[i])
			}
		}
	}
	if r1.Qdisc != r2.Qdisc {
		t.Fatalf("qdisc stats differ: %+v vs %+v", r1.Qdisc, r2.Qdisc)
	}
}

// System-level property: for random two-class weighted policies under
// random saturating TCP load, the scheduler is (a) rate-bounded — total
// goodput never exceeds the policy rate — and (b) roughly
// weight-proportional between the saturating classes.
func TestRandomPolicyInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("property sim sweep is slow")
	}
	check := func(w1Raw, w2Raw uint8, rateStep uint8) bool {
		w1 := int(w1Raw%4) + 1
		w2 := int(w2Raw%4) + 1
		rateGbit := 5 + int(rateStep%4)*5 // 5..20 Gbit
		script := `
qdisc add dev x root handle 1: htb rate ` + itoa(rateGbit) + `gbit default 1:20
class add dev x parent 1: classid 1:10 weight ` + itoa(w1) + `
class add dev x parent 1: classid 1:20 weight ` + itoa(w2) + `
filter add dev x app 0 flowid 1:10
filter add dev x app 1 flowid 1:20
`
		policy, err := ParsePolicy(script)
		if err != nil {
			t.Logf("parse: %v", err)
			return false
		}
		res, err := Scenario{
			Policy:      policy,
			DurationSec: 2,
			Apps: []AppTraffic{
				{App: 0, Conns: 2},
				{App: 1, Conns: 2},
			},
		}.Run()
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		a := res.AppGbps(0, 0.5, 2)
		b := res.AppGbps(1, 0.5, 2)
		total := a + b
		// (a) Rate bound: ≤ policy rate + 8% (bursts + measurement bins).
		if total > float64(rateGbit)*1.08 {
			t.Logf("total %.2fG exceeds %dG policy (w=%d:%d)", total, rateGbit, w1, w2)
			return false
		}
		// (b) Weight proportionality within 30%.
		wantA := total * float64(w1) / float64(w1+w2)
		if wantA > 0 && math.Abs(a-wantA) > 0.3*wantA {
			t.Logf("share a=%.2fG want %.2fG (w=%d:%d rate=%dG)", a, wantA, w1, w2, rateGbit)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
