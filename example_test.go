package flowvalve_test

import (
	"fmt"

	"flowvalve"
)

// Compile a policy and inspect it — the fv front end as a library.
func ExampleParsePolicy() {
	policy, err := flowvalve.ParsePolicy(`
fv qdisc add dev nfp0 root handle 1: htb rate 1gbit default 1:20
fv class add dev nfp0 parent 1: classid 1:10 htb prio 0
fv class add dev nfp0 parent 1: classid 1:20 htb prio 1
fv filter add dev nfp0 parent 1: app 0 flowid 1:10
`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(policy.Classes())
	// Output: [1: 1:10 1:20]
}

// Schedule packets through a compiled policy with the wall clock — the
// embedded-datapath use of the library.
func ExampleScheduler_schedule() {
	policy, err := flowvalve.ParsePolicy(`
fv qdisc add dev nfp0 root handle 1: htb rate 100gbit
fv class add dev nfp0 parent 1: classid 1:10
fv filter add dev nfp0 parent 1: app 0 flowid 1:10
`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sched, err := flowvalve.NewScheduler(policy, flowvalve.NewWallClock(), flowvalve.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	d := sched.Schedule(0 /* app */, 7 /* flow */, 1500)
	fmt.Println(d.Verdict, d.Class)
	// Output: forward 1:10
}

// Pin a flow once, then schedule its packets with zero-allocation calls
// from any goroutine.
func ExampleScheduler_pin() {
	policy, err := flowvalve.FairQueuePolicy("100gbit", 2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sched, err := flowvalve.NewScheduler(policy, flowvalve.NewWallClock(), flowvalve.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	h, err := sched.Pin(1, 42)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(h.Class(), h.Schedule(1500).Verdict)
	// Output: 1:20 forward
}

// Run a deterministic SmartNIC simulation of the paper's motivation
// example and read a policy-enforced share back.
func ExampleScenario_run() {
	res, err := flowvalve.Scenario{
		Policy:      flowvalve.MotivationPolicy(),
		DurationSec: 5,
		Apps: []flowvalve.AppTraffic{
			{App: 1, Conns: 1}, // KVS
			{App: 2, Conns: 1}, // ML (guaranteed 2Gbps)
		},
	}.Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// With only vm1 active, KVS (prior) takes the bulk while ML keeps
	// its 2Gbps guarantee. The run is deterministic, so the rounded
	// shares are stable.
	ml := res.AppGbps(2, 2, 5)
	fmt.Printf("ML ≈ %.0f Gbps\n", ml)
	// Output: ML ≈ 2 Gbps
}
